"""Shared helpers for the experiment drivers: timing, tables, scaling fits."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["timed", "Table", "geometric_levels", "fit_power_law"]


def timed(fn: Callable[[], object], *, repeat: int = 1) -> Tuple[float, object]:
    """Run ``fn`` ``repeat`` times and return (best wall-clock seconds, last result)."""
    best = math.inf
    result: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


@dataclass
class Table:
    """A minimal text table: headers + rows of cells."""

    title: str
    headers: List[str]
    rows: List[List[str]]

    def add(self, *cells: object) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
        print()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def geometric_levels(low: int, high: int, factor: int = 2) -> List[int]:
    """Integer levels ``low, low*factor, ...`` up to ``high`` (inclusive)."""
    if low < 1 or high < low or factor < 2:
        raise ValueError("invalid level specification")
    levels = []
    value = low
    while value <= high:
        levels.append(value)
        value *= factor
    return levels


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent ``p`` of ``y ~ x**p`` (log-log regression slope).

    Used to check empirical scaling shapes (e.g. runtime ~ n**1 for the linear
    algorithm, ~ m**1 for the MRT baseline, ~ polylog(m) i.e. exponent near 0
    for the compact-encoding algorithms).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-12)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    if den == 0:
        return 0.0
    return num / den
