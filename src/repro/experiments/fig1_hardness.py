"""Figure 1 reproduction: structure of the hardness-reduction schedule.

Figure 1 of the paper shows the schedule that a yes-instance of 4-Partition
induces: ``m = n`` machines, every machine running exactly four
single-processor jobs back to back, every machine loaded for exactly ``n*B``
time units.  The experiment

* generates planted yes-instances and no-instances of 4-Partition,
* applies the Theorem 1 reduction,
* solves the 4-Partition instances exactly (small sizes),
* builds the Figure 1 schedule, validates it, maps it back to a partition,
* and reports the structural invariants (jobs per machine, per-machine load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.validation import assert_valid_schedule
from ..hardness.four_partition import random_no_instance, random_yes_instance, solve_four_partition
from ..hardness.reduction import reduce_to_scheduling, schedule_from_partition, partition_from_schedule
from ..hardness.four_partition import verify_four_partition_solution
from ..simulator.gantt import render_gantt
from .common import Table

__all__ = ["Fig1Row", "run", "main"]


@dataclass
class Fig1Row:
    groups: int
    kind: str  # "yes" or "no"
    solved: bool
    target_makespan: float
    schedule_makespan: Optional[float]
    jobs_per_machine_ok: Optional[bool]
    machine_loads_ok: Optional[bool]
    roundtrip_ok: Optional[bool]


def run(*, group_sizes=(3, 4, 5, 6), seed: int = 11) -> List[Fig1Row]:
    rows: List[Fig1Row] = []
    for idx, groups in enumerate(group_sizes):
        for kind in ("yes", "no"):
            if kind == "yes":
                instance = random_yes_instance(groups, seed=seed + idx)
            else:
                instance = random_no_instance(groups, seed=seed + idx)
            reduced = reduce_to_scheduling(instance)
            solution = solve_four_partition(instance)
            row = Fig1Row(
                groups=groups,
                kind=kind,
                solved=solution is not None,
                target_makespan=reduced.target_makespan,
                schedule_makespan=None,
                jobs_per_machine_ok=None,
                machine_loads_ok=None,
                roundtrip_ok=None,
            )
            if solution is not None:
                schedule = schedule_from_partition(reduced, solution)
                assert_valid_schedule(schedule, reduced.jobs, max_makespan=reduced.target_makespan)
                row.schedule_makespan = schedule.makespan
                # per-machine structure straight from the schedule's columns:
                # reduction jobs occupy exactly one machine each, so the
                # span_first column *is* the machine column
                cols = schedule.columns()
                machines, machine_ids = np.unique(cols.span_first, return_inverse=True)
                jobs_per_machine = np.bincount(machine_ids, minlength=len(machines))
                loads = np.bincount(
                    machine_ids,
                    weights=cols.duration[cols.span_owner],
                    minlength=len(machines),
                )
                row.jobs_per_machine_ok = bool((jobs_per_machine == 4).all())
                row.machine_loads_ok = bool(
                    (
                        np.abs(loads - reduced.target_makespan)
                        <= 1e-6 * reduced.target_makespan
                    ).all()
                )
                back = partition_from_schedule(reduced, schedule)
                row.roundtrip_ok = verify_four_partition_solution(instance, back)
            rows.append(row)
    return rows


def main(show_gantt: bool = True) -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Figure 1 reproduction — 4-Partition reduction schedules",
        ["groups (m=n)", "instance", "4-partition solvable", "target nB", "makespan", "4 jobs/machine", "loads = nB", "round trip"],
        [],
    )
    for r in rows:
        table.add(
            r.groups,
            r.kind,
            r.solved,
            r.target_makespan,
            r.schedule_makespan if r.schedule_makespan is not None else "-",
            r.jobs_per_machine_ok if r.jobs_per_machine_ok is not None else "-",
            r.machine_loads_ok if r.machine_loads_ok is not None else "-",
            r.roundtrip_ok if r.roundtrip_ok is not None else "-",
        )
    table.print()

    if show_gantt:
        instance = random_yes_instance(4, seed=3)
        reduced = reduce_to_scheduling(instance)
        solution = solve_four_partition(instance)
        if solution:
            schedule = schedule_from_partition(reduced, solution)
            print("Example Figure 1 schedule (m = n = 4 machines):")
            print(render_gantt(schedule))
            print()


if __name__ == "__main__":  # pragma: no cover
    main()
