"""Theorem 3 quality study: measured approximation ratios.

The paper proves worst-case guarantees; this study measures the ratios
actually achieved on synthetic workloads:

* against the **exact optimum** on tiny instances (branch-and-bound solver) —
  the strongest possible check of the `(3/2+eps)` and `(1+eps)` claims;
* against the **planted optimum** of planted-partition instances;
* against the certified **lower bound** on larger random instances (a
  pessimistic over-estimate of the true ratio).

Every produced schedule is validated and additionally executed on the
discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.bounds import makespan_lower_bound
from ..core.exact_small import exact_makespan
from ..core.scheduler import schedule_moldable
from ..simulator.engine import simulate_schedule
from ..workloads.generators import (
    planted_partition_instance,
    random_amdahl_instance,
    random_mixed_instance,
    random_monotone_tabulated_instance,
)
from .common import Table

__all__ = ["QualityRow", "run", "main"]

ALGORITHMS = ("two_approx", "mrt", "compressible", "bounded", "bounded_linear")


@dataclass
class QualityRow:
    family: str
    reference: str  # "exact", "planted", "lower_bound"
    algorithm: str
    n: int
    m: int
    eps: float
    makespan: float
    reference_value: float
    ratio: float
    guarantee: Optional[float]
    within_guarantee: Optional[bool]
    simulator_ok: bool


def _evaluate(jobs, m, eps, algorithm, family, reference, reference_value) -> QualityRow:
    result = schedule_moldable(jobs, m, eps, algorithm=algorithm)
    sim_ok = True
    try:
        simulate_schedule(result.schedule)
    except Exception:
        sim_ok = False
    ratio = result.makespan / reference_value if reference_value > 0 else 1.0
    within = None
    if result.guarantee is not None and reference in ("exact", "planted"):
        within = ratio <= result.guarantee * (1.0 + 1e-6)
    return QualityRow(
        family=family,
        reference=reference,
        algorithm=algorithm,
        n=len(jobs),
        m=m,
        eps=eps,
        makespan=result.makespan,
        reference_value=reference_value,
        ratio=ratio,
        guarantee=result.guarantee,
        within_guarantee=within,
        simulator_ok=sim_ok,
    )


def run(
    *,
    eps: float = 0.2,
    seed: int = 31,
    tiny_cases: Sequence[tuple] = ((4, 3), (5, 4), (6, 4)),
    planted_groups: Sequence[int] = (8, 16, 32),
    random_cases: Sequence[tuple] = ((50, 64), (100, 256), (200, 1024)),
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[QualityRow]:
    rows: List[QualityRow] = []

    # 1) tiny instances vs the exact optimum
    for idx, (n, m) in enumerate(tiny_cases):
        instance = random_monotone_tabulated_instance(n, m, seed=seed + idx)
        opt = exact_makespan(instance.jobs, m)
        for algorithm in algorithms:
            rows.append(_evaluate(instance.jobs, m, eps, algorithm, "tiny_tabulated", "exact", opt))

    # 2) planted-optimum instances
    for idx, groups in enumerate(planted_groups):
        instance = planted_partition_instance(groups, seed=seed + 100 + idx)
        assert instance.known_optimum is not None
        for algorithm in algorithms:
            rows.append(
                _evaluate(
                    instance.jobs,
                    instance.m,
                    eps,
                    algorithm,
                    "planted_partition",
                    "planted",
                    instance.known_optimum,
                )
            )

    # 3) larger random instances vs the certified lower bound
    for idx, (n, m) in enumerate(random_cases):
        instance = random_mixed_instance(n, m, seed=seed + 200 + idx)
        lower = makespan_lower_bound(instance.jobs, m)
        for algorithm in algorithms:
            rows.append(_evaluate(instance.jobs, m, eps, algorithm, "random_mixed", "lower_bound", lower))

    return rows


def summarize(rows: List[QualityRow]) -> Dict[str, Dict[str, float]]:
    """Worst and mean ratio per (algorithm, reference kind)."""
    grouped: Dict[str, List[float]] = {}
    for row in rows:
        grouped.setdefault(f"{row.algorithm}|{row.reference}", []).append(row.ratio)
    out: Dict[str, Dict[str, float]] = {}
    for key, ratios in grouped.items():
        out[key] = {"worst": max(ratios), "mean": sum(ratios) / len(ratios), "count": len(ratios)}
    return out


def main() -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Quality study — measured approximation ratios",
        ["family", "reference", "algorithm", "n", "m", "makespan", "reference value", "ratio", "guarantee", "ok"],
        [],
    )
    for r in rows:
        table.add(
            r.family,
            r.reference,
            r.algorithm,
            r.n,
            r.m,
            r.makespan,
            r.reference_value,
            r.ratio,
            r.guarantee if r.guarantee is not None else "-",
            (r.within_guarantee if r.within_guarantee is not None else True) and r.simulator_ok,
        )
    table.print()

    summary = Table("Summary (worst / mean ratio)", ["algorithm | reference", "worst", "mean", "count"], [])
    for key, stats in summarize(rows).items():
        summary.add(key, stats["worst"], stats["mean"], int(stats["count"]))
    summary.print()


if __name__ == "__main__":  # pragma: no cover
    main()
