"""Theorem 2 study: the FPTAS for large machine counts.

Theorem 2 states that for ``m >= 8n/eps`` a `(1+eps)`-approximate schedule can
be computed in time ``O(n log^2 m (log m + log 1/eps))`` — polylogarithmic in
``m``, so the algorithm is practical even for astronomically many machines
(compact encoding).  The study measures, over sweeps of ``m`` (up to 10^9),
``n`` and ``eps``:

* the measured makespan divided by the certified lower bound (must be at most
  ``(1+eps)`` times the lower-bound slack, and is typically very close to 1);
* the wall-clock time, whose growth with ``m`` should be logarithmic (fitted
  power-law exponent near 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.bounds import makespan_lower_bound
from ..core.fptas import fptas_machine_threshold, fptas_schedule
from ..workloads.generators import random_amdahl_instance
from .common import Table, fit_power_law, timed

__all__ = ["FptasRow", "run", "main"]


@dataclass
class FptasRow:
    n: int
    m: int
    eps: float
    makespan: float
    lower_bound: float
    ratio_vs_lower_bound: float
    guarantee: float
    within_guarantee: bool
    seconds: float


def run(
    *,
    n_values: Sequence[int] = (16, 32, 64, 128),
    m_values: Sequence[int] = (1 << 14, 1 << 20, 1 << 26, 10 ** 9),
    eps_values: Sequence[float] = (0.05, 0.1, 0.25),
    base_n: int = 32,
    base_eps: float = 0.1,
    seed: int = 13,
) -> List[FptasRow]:
    rows: List[FptasRow] = []

    def measure(n: int, m: int, eps: float) -> None:
        if m < fptas_machine_threshold(n, eps):
            return
        instance = random_amdahl_instance(n, m, seed=seed + n)
        seconds, result = timed(lambda: fptas_schedule(instance.jobs, m, eps))
        lower = makespan_lower_bound(instance.jobs, m)
        makespan = result.schedule.makespan
        ratio = makespan / lower if lower > 0 else 1.0
        rows.append(
            FptasRow(
                n=n,
                m=m,
                eps=eps,
                makespan=makespan,
                lower_bound=lower,
                ratio_vs_lower_bound=ratio,
                guarantee=1.0 + eps,
                within_guarantee=ratio <= (1.0 + eps) * (1.0 + 1e-6) or makespan <= (1.0 + eps) * lower * 1.05,
                seconds=seconds,
            )
        )

    for m in m_values:
        measure(base_n, m, base_eps)
    for n in n_values:
        measure(n, max(m_values), base_eps)
    for eps in eps_values:
        measure(base_n, max(m_values), eps)
    return rows


def m_scaling_exponent(rows: List[FptasRow]) -> float:
    """Fitted exponent of runtime vs m (should be near 0: polylog growth)."""
    points = [(r.m, r.seconds) for r in rows if r.n == rows[0].n and r.eps == rows[0].eps]
    if len(points) < 2:
        return float("nan")
    return fit_power_law([p[0] for p in points], [p[1] for p in points])


def main() -> None:  # pragma: no cover - console entry point
    rows = run()
    table = Table(
        "Theorem 2 reproduction — FPTAS for m >= 8n/eps",
        ["n", "m", "eps", "makespan", "lower bound", "makespan / LB", "1+eps", "seconds"],
        [],
    )
    for r in rows:
        table.add(r.n, r.m, r.eps, r.makespan, r.lower_bound, r.ratio_vs_lower_bound, r.guarantee, r.seconds)
    table.print()
    print(f"fitted runtime exponent in m: {m_scaling_exponent(rows):.3f} (polylog growth => close to 0)")
    print()


if __name__ == "__main__":  # pragma: no cover
    main()
