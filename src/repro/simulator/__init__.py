"""Discrete-event execution of schedules and online list-scheduling simulation.

The simulator executes a :class:`repro.core.schedule.Schedule` on ``m``
machines event by event, independently re-checking feasibility and measuring
utilisation over time; it is the "hardware" substrate on which the produced
schedules are validated, and it powers the ASCII Gantt/shelf renderings used
to reproduce Figures 1–3 of the paper.
"""

from .engine import ExecutionTrace, SimulationError, simulate_schedule
from .list_sim import OnlineListScheduler
from .gantt import render_gantt, render_shelves

__all__ = [
    "ExecutionTrace",
    "SimulationError",
    "simulate_schedule",
    "OnlineListScheduler",
    "render_gantt",
    "render_shelves",
]
