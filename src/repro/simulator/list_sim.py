"""Online list-scheduling simulator.

Whereas :func:`repro.core.list_scheduling.list_schedule` computes a list
schedule analytically, :class:`OnlineListScheduler` *simulates* the same
policy the way an online cluster scheduler would run it: jobs are submitted to
a queue, machines announce themselves idle, and the scheduler dispatches the
head of the queue whenever enough machines are idle.  The two implementations
must agree on the makespan — a cross-check exercised in the test suite — and
the simulator additionally supports release times, which the analytic code
does not.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.allotment import Allotment
from ..core.job import MoldableJob
from ..core.schedule import Schedule

__all__ = ["OnlineListScheduler"]


@dataclass
class _QueuedJob:
    job: MoldableJob
    processors: int
    release: float


class OnlineListScheduler:
    """Event-driven list scheduling with fixed allotments and release times."""

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self._queue: List[_QueuedJob] = []

    def submit(self, job: MoldableJob, processors: int, release: float = 0.0) -> None:
        """Add a job to the submission queue."""
        if processors < 1 or processors > self.m:
            raise ValueError(f"processors must lie in [1, {self.m}]")
        if release < 0:
            raise ValueError("release time must be non-negative")
        self._queue.append(_QueuedJob(job, processors, release))

    def submit_allotment(self, jobs: Sequence[MoldableJob], allotment: Allotment) -> None:
        for job in jobs:
            self.submit(job, allotment[job])

    def run(self) -> Schedule:
        """Simulate FCFS list scheduling and return the produced schedule."""
        schedule = Schedule(m=self.m, metadata={"algorithm": "online_list_scheduler"})
        if not self._queue:
            return schedule
        # machine groups as (free_time, seq, first, count)
        heap: List[Tuple[float, int, int, int]] = [(0.0, 0, 0, self.m)]
        seq = 1
        pending = sorted(self._queue, key=lambda q: q.release)
        # FCFS within release order
        for queued in pending:
            need = queued.processors
            gathered: List[Tuple[float, int, int]] = []
            have = 0
            while have < need:
                free_at, _, first, count = heapq.heappop(heap)
                take = min(count, need - have)
                gathered.append((free_at, first, take))
                if take < count:
                    heapq.heappush(heap, (free_at, seq, first + take, count - take))
                    seq += 1
                have += take
            start = max(queued.release, max(f for f, _, _ in gathered))
            spans = [(first, count) for _, first, count in gathered]
            entry = schedule.add(queued.job, start, spans)
            for _, first, count in gathered:
                heapq.heappush(heap, (entry.end, seq, first, count))
                seq += 1
        self._queue.clear()
        return schedule
