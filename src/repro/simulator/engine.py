"""Discrete-event execution engine.

:func:`simulate_schedule` replays a schedule as a sequence of start / finish
events, maintaining the set of busy machine spans at every instant.  It is an
*independent* implementation of the feasibility rules (it does not reuse
:mod:`repro.core.validation`), so that schedules produced by the algorithms
are double-checked by genuinely different code — a standard cross-validation
technique for schedulers.

It also records a utilisation profile (busy processors over time) used by the
experiments.

The default (``backend="auto"``) replay is *columnar*: events are sorted and
prefix-summed as NumPy arrays (O(n log n) instead of the Python event loop's
pairwise conflict scans), producing the identical trace.  Whenever the fast
sweep sees anything the scalar loop treats specially — events closer together
than the float tolerance, a potential machine conflict, an out-of-range span
or over-subscription — it re-runs the scalar loop, which stays the single
source of truth for error reporting and tolerance handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.schedule import Schedule, ScheduledJob

__all__ = ["SimulationError", "ExecutionTrace", "simulate_schedule"]

_EPS = 1e-9


def _time_tol(*values: float) -> float:
    """Floating-point tolerance for comparing event times.

    Mirrors the validator's ``ABS_TOL + REL_TOL * max(|a|, |b|, 1)`` rule
    (:mod:`repro.core.validation`): the two checkers are independent
    implementations but must agree on which overlaps are mere float noise.
    """
    scale = 1.0
    for v in values:
        a = abs(v)
        if a > scale:
            scale = a
    return _EPS + _EPS * scale


class SimulationError(RuntimeError):
    """Raised when the schedule cannot be executed on the machines."""


@dataclass
class ExecutionTrace:
    """Result of a simulation run."""

    makespan: float
    total_work: float
    #: piecewise-constant utilisation: list of (time, busy_processors) change points
    utilization_profile: List[Tuple[float, int]] = field(default_factory=list)
    #: number of start events processed
    events: int = 0
    #: peak number of simultaneously busy processors
    peak_busy: int = 0

    def average_utilization(self, m: int) -> float:
        """Time-averaged fraction of busy machines over [0, makespan]."""
        if self.makespan <= 0:
            return 0.0
        area = 0.0
        profile = self.utilization_profile
        for (t0, busy), (t1, _) in zip(profile, profile[1:]):
            area += busy * (t1 - t0)
        if profile:
            area += profile[-1][1] * (self.makespan - profile[-1][0])
        return area / (m * self.makespan)


def _spans_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    """Number of machines shared by two spans."""
    lo = max(a[0], b[0])
    hi = min(a[0] + a[1], b[0] + b[1])
    return max(0, hi - lo)


def _simulate_columnar(schedule: Schedule) -> Optional[ExecutionTrace]:
    """Columnar replay: the schedule's native columns plus the shared
    event-sweep helper (:meth:`~repro.core.schedule.ScheduleColumns.event_sweep`).

    Returns ``None`` whenever the scalar loop's special cases could apply —
    near-coincident event times (its float-tolerance release logic), a
    potential machine conflict, over-subscription, out-of-range spans, or
    int64 columns whose prefix sums could overflow — so the caller falls
    back to the scalar event loop.  Astronomical machine counts run
    natively: beyond int64 the columns are exact object dtype (see
    :mod:`repro.core.capacity`) and every sweep below is dtype-agnostic.
    The scalar loop remains a genuinely *independent* implementation of the
    feasibility rules (request it explicitly with ``backend="scalar"`` for
    cross-validation); when a trace is returned from this fast path it is
    identical to the scalar one.
    """
    from ..core.schedule import spans_time_overlap

    m = schedule.m
    n = len(schedule)
    if n == 0:
        return None
    cols = schedule.try_columns()
    if cols is None:
        return None
    # out-of-range spans: let the scalar loop raise with its exact message
    if (cols.span_first < 0).any() or (cols.span_end > m).any():
        return None

    if not cols.fits_int64_sweep():
        return None  # int64 prefix sums could overflow
    order, t_sorted, running = cols.event_sweep()

    # The scalar loop releases "almost done" jobs within float tolerance of a
    # start; bail out to it whenever two distinct event times are that close.
    uniq = np.unique(t_sorted)
    if len(uniq) > 1:
        tol = _EPS + _EPS * max(1.0, float(np.abs(t_sorted).max()))
        if float(np.diff(uniq).min()) <= tol:
            return None

    peak = max(0, int(running.max()))
    if peak > m:
        return None  # over-subscription: scalar loop owns strict/lenient handling

    # potential machine conflicts re-run the scalar loop (tolerance + message)
    suspicious = spans_time_overlap(
        cols.span_first,
        cols.span_end,
        cols.start[cols.span_owner],
        cols.end[cols.span_owner],
        max_incidences=max(1_000_000, 8 * len(cols.span_first)),
    )
    if suspicious is None or suspicious:
        return None

    # utilisation profile: busy count after the last event of each instant
    profile_times, profile_busy = cols.busy_profile()
    profile = list(zip(profile_times.tolist(), profile_busy.tolist()))

    # total work accumulates in start-event order, exactly like the loop
    start_positions = order[order < n]
    works = cols.processors.astype(np.float64) * cols.duration
    total_work = sum(works[start_positions].tolist())

    return ExecutionTrace(
        makespan=float(cols.end.max()),
        total_work=total_work,
        utilization_profile=profile,
        events=n,
        peak_busy=peak,
    )


def simulate_schedule(
    schedule: Schedule, *, strict: bool = True, backend: str = "auto"
) -> ExecutionTrace:
    """Execute a schedule event by event.

    Parameters
    ----------
    schedule:
        The schedule to execute.
    strict:
        If true (default), any machine conflict or out-of-range span raises
        :class:`SimulationError`; otherwise the trace is still produced and
        the caller can inspect it.
    backend:
        ``"auto"`` (default) runs the columnar NumPy sweep and falls back to
        the scalar event loop for anything it cannot replay exactly;
        ``"scalar"`` forces the reference loop.  Traces are identical.
    """
    if backend not in ("auto", "vectorized", "scalar"):
        raise ValueError(f"unknown simulation backend {backend!r}")
    if backend != "scalar":
        trace = _simulate_columnar(schedule)
        if trace is not None:
            return trace
    m = schedule.m
    entries = list(schedule.entries)
    events: List[Tuple[float, int, int, ScheduledJob]] = []
    for idx, entry in enumerate(entries):
        for first, count in entry.spans:
            if first < 0 or first + count > m:
                if strict:
                    raise SimulationError(
                        f"job {entry.job.name!r}: machine span ({first}, {count}) outside [0, {m})"
                    )
        events.append((entry.start, 1, idx, entry))
        events.append((entry.end, 0, idx, entry))
    # process finish events before start events at equal times
    events.sort(key=lambda ev: (ev[0], ev[1]))

    running: Dict[int, ScheduledJob] = {}
    busy = 0
    profile: List[Tuple[float, int]] = []
    peak = 0
    starts = 0
    total_work = 0.0

    for time, kind, idx, entry in events:
        if kind == 0:  # finish
            if idx in running:
                del running[idx]
                busy -= entry.processors
        else:  # start
            starts += 1
            # Release jobs that finish within float tolerance of this start:
            # their finish events are still pending only because of rounding
            # noise, and the validator treats such intervals as touching.
            almost_done = [
                ridx for ridx, other in running.items() if other.end - time <= _time_tol(other.end, time)
            ]
            for ridx in almost_done:
                busy -= running.pop(ridx).processors
            # conflict check against currently running jobs
            for other in running.values():
                for span_a in entry.spans:
                    for span_b in other.spans:
                        shared = _spans_overlap(span_a, span_b)
                        overlap_end = min(entry.end, other.end)
                        if shared > 0 and overlap_end - time > _time_tol(overlap_end, time):
                            message = (
                                f"machine conflict at t={time:.6g}: job {entry.job.name!r} and "
                                f"job {other.job.name!r} share {shared} machine(s)"
                            )
                            if strict:
                                raise SimulationError(message)
            running[idx] = entry
            busy += entry.processors
            total_work += entry.work
            if busy > m and strict:
                raise SimulationError(
                    f"processor over-subscription at t={time:.6g}: {busy} busy machines but m={m}"
                )
        peak = max(peak, busy)
        if profile and abs(profile[-1][0] - time) < _EPS:
            profile[-1] = (time, busy)
        else:
            profile.append((time, busy))

    return ExecutionTrace(
        makespan=schedule.makespan,
        total_work=total_work,
        utilization_profile=profile,
        events=starts,
        peak_busy=peak,
    )
