"""ASCII Gantt-chart and shelf renderings.

The paper's Figures 1–3 are structural diagrams of schedules; these helpers
render the corresponding pictures as text so that the figure-reproduction
experiments can print them.  Machine rows are grouped (a job occupying a
contiguous span of machines is drawn once with its height annotated), so the
output stays readable even for schedules on thousands of machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schedule import Schedule, ScheduledJob

__all__ = ["render_gantt", "render_shelves"]


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 72,
    max_rows: int = 40,
    label_width: int = 14,
) -> str:
    """Render a schedule as an ASCII Gantt chart.

    One row per scheduled job (grouped spans), time on the horizontal axis.
    """
    if not schedule.entries:
        return "(empty schedule)"
    horizon = schedule.makespan
    if horizon <= 0:
        return "(zero-length schedule)"
    rows: List[str] = []
    header = f"{'job':<{label_width}} |" + f" 0 {'·' * (width - 10)} {horizon:.3g}"
    rows.append(header)
    entries = schedule.sorted_by_start()
    shown = entries[:max_rows]
    for entry in shown:
        start_col = int(round(entry.start / horizon * width))
        end_col = max(start_col + 1, int(round(entry.end / horizon * width)))
        bar = " " * start_col + "█" * (end_col - start_col)
        procs = entry.processors
        label = f"{entry.job.name[:label_width - 1]:<{label_width - 1}}"
        rows.append(f"{label} |{bar[:width]}| p={procs}")
    if len(entries) > max_rows:
        rows.append(f"... ({len(entries) - max_rows} more jobs not shown)")
    return "\n".join(rows)


def render_shelves(
    schedule: Schedule,
    d: float,
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Render a shelf-structured schedule (Figures 2 and 3).

    Jobs are classified by their start/end relative to the shelf boundaries
    ``0``, ``d`` and ``3d/2``: S1 jobs start at 0 and are at most ``d`` long,
    S2 jobs end at ``3d/2``, S0 jobs run alongside both shelves, and small
    jobs fill the remaining gaps.
    """
    half = 1.5 * d
    groups: Dict[str, List[ScheduledJob]] = {"S0": [], "S1": [], "S2": [], "small": []}
    for entry in schedule.entries:
        duration = entry.duration
        if entry.start <= 1e-9 and duration > d * 1.0 + 1e-9:
            groups["S0"].append(entry)
        elif entry.start <= 1e-9 and duration > d / 2.0 + 1e-9:
            groups["S1"].append(entry)
        elif abs(entry.end - half) <= 1e-6 * max(half, 1.0) and duration > d / 4.0:
            groups["S2"].append(entry)
        else:
            groups["small"].append(entry)

    lines: List[str] = []
    lines.append(f"shelf structure for d = {d:.4g} (makespan bound 3d/2 = {half:.4g}, m = {schedule.m})")
    for shelf in ("S0", "S1", "S2", "small"):
        entries = groups[shelf]
        procs = sum(e.processors for e in entries)
        lines.append(f"  {shelf:<5} jobs={len(entries):<5} processors={procs}")
    lines.append("")
    lines.append(render_gantt(schedule, width=width, max_rows=max_rows))
    return "\n".join(lines)
