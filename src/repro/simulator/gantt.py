"""ASCII Gantt-chart and shelf renderings.

The paper's Figures 1–3 are structural diagrams of schedules; these helpers
render the corresponding pictures as text so that the figure-reproduction
experiments can print them.  Machine rows are grouped (a job occupying a
contiguous span of machines is drawn once with its height annotated), so the
output stays readable even for schedules on thousands of machines.

Rendering reads the schedule's flat columns directly (start / end /
processor arrays): the row geometry for a 10^5-job schedule is computed with
a handful of array operations, and job *objects* are only touched for the
``max_rows`` rows actually shown.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.schedule import Schedule

__all__ = ["render_gantt", "render_shelves"]


def render_gantt(
    schedule: Schedule,
    *,
    width: int = 72,
    max_rows: int = 40,
    label_width: int = 14,
) -> str:
    """Render a schedule as an ASCII Gantt chart.

    One row per scheduled job (grouped spans), time on the horizontal axis.
    """
    n = len(schedule)
    if n == 0:
        return "(empty schedule)"
    cols = schedule.try_columns()
    if cols is None:
        # astronomically wide spans (counts beyond int64): keep the exact
        # per-entry path so processor labels stay arbitrary-precision ints
        return _render_gantt_entries(schedule, width=width, max_rows=max_rows, label_width=label_width)
    starts, ends, procs = cols.start, cols.end, cols.processors
    horizon = float(ends.max())
    if horizon <= 0:
        return "(zero-length schedule)"
    rows: List[str] = []
    header = f"{'job':<{label_width}} |" + f" 0 {'·' * (width - 10)} {horizon:.3g}"
    rows.append(header)
    # same ordering as ``Schedule.sorted_by_start``: by start, widest first
    order = np.lexsort((-procs, starts))
    shown = order[:max_rows].tolist()
    jobs = schedule.jobs()
    start_cols = np.rint(starts[order[:max_rows]] / horizon * width).astype(np.int64)
    end_cols = np.maximum(
        start_cols + 1, np.rint(ends[order[:max_rows]] / horizon * width).astype(np.int64)
    )
    for i, entry_idx in enumerate(shown):
        start_col = int(start_cols[i])
        end_col = int(end_cols[i])
        bar = " " * start_col + "█" * (end_col - start_col)
        name = jobs[entry_idx].name
        label = f"{name[:label_width - 1]:<{label_width - 1}}"
        rows.append(f"{label} |{bar[:width]}| p={int(procs[entry_idx])}")
    if n > max_rows:
        rows.append(f"... ({n - max_rows} more jobs not shown)")
    return "\n".join(rows)


def _render_gantt_entries(
    schedule: Schedule, *, width: int, max_rows: int, label_width: int
) -> str:
    """Exact per-entry rendering (the pre-columnar reference path)."""
    horizon = schedule.makespan
    if horizon <= 0:
        return "(zero-length schedule)"
    rows: List[str] = []
    rows.append(f"{'job':<{label_width}} |" + f" 0 {'·' * (width - 10)} {horizon:.3g}")
    entries = schedule.sorted_by_start()
    for entry in entries[:max_rows]:
        start_col = int(round(entry.start / horizon * width))
        end_col = max(start_col + 1, int(round(entry.end / horizon * width)))
        bar = " " * start_col + "█" * (end_col - start_col)
        label = f"{entry.job.name[:label_width - 1]:<{label_width - 1}}"
        rows.append(f"{label} |{bar[:width]}| p={entry.processors}")
    if len(entries) > max_rows:
        rows.append(f"... ({len(entries) - max_rows} more jobs not shown)")
    return "\n".join(rows)


def render_shelves(
    schedule: Schedule,
    d: float,
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Render a shelf-structured schedule (Figures 2 and 3).

    Jobs are classified by their start/end relative to the shelf boundaries
    ``0``, ``d`` and ``3d/2``: S1 jobs start at 0 and are at most ``d`` long,
    S2 jobs end at ``3d/2``, S0 jobs run alongside both shelves, and small
    jobs fill the remaining gaps.  The classification runs on the schedule's
    columns (one boolean mask per shelf), never on entry objects.
    """
    half = 1.5 * d
    n = len(schedule)
    cols = schedule.try_columns() if n else None
    lines: List[str] = []
    lines.append(f"shelf structure for d = {d:.4g} (makespan bound 3d/2 = {half:.4g}, m = {schedule.m})")
    if cols is not None:
        start, duration, end, procs = cols.start, cols.duration, cols.end, cols.processors
        starts_at_zero = start <= 1e-9
        s0 = starts_at_zero & (duration > d * 1.0 + 1e-9)
        s1 = starts_at_zero & ~s0 & (duration > d / 2.0 + 1e-9)
        s2 = (
            ~s0
            & ~s1
            & (np.abs(end - half) <= 1e-6 * max(half, 1.0))
            & (duration > d / 4.0)
        )
        small = ~s0 & ~s1 & ~s2
        stats = [
            # object-dtype sum: processor totals stay exact even when a
            # shelf's int64 counts would overflow a plain int64 sum
            (shelf, int(np.count_nonzero(mask)), int(procs[mask].astype(object).sum()) if mask.any() else 0)
            for shelf, mask in (("S0", s0), ("S1", s1), ("S2", s2), ("small", small))
        ]
    else:
        # empty schedule, or counts beyond int64: exact per-entry grouping
        groups = {"S0": [], "S1": [], "S2": [], "small": []}
        for entry in schedule.entries:
            duration = entry.duration
            if entry.start <= 1e-9 and duration > d * 1.0 + 1e-9:
                groups["S0"].append(entry)
            elif entry.start <= 1e-9 and duration > d / 2.0 + 1e-9:
                groups["S1"].append(entry)
            elif abs(entry.end - half) <= 1e-6 * max(half, 1.0) and duration > d / 4.0:
                groups["S2"].append(entry)
            else:
                groups["small"].append(entry)
        stats = [
            (shelf, len(entries), sum(e.processors for e in entries))
            for shelf, entries in groups.items()
        ]
    for shelf, count, shelf_procs in stats:
        lines.append(f"  {shelf:<5} jobs={count:<5} processors={shelf_procs}")
    lines.append("")
    lines.append(render_gantt(schedule, width=width, max_rows=max_rows))
    return "\n".join(lines)
