"""repro — reproduction of *Scheduling Monotone Moldable Jobs in Linear Time*
(Klaus Jansen & Felix Land, IPDPS 2018).

Quick start::

    from repro import AmdahlJob, schedule_moldable

    jobs = [AmdahlJob(f"job{i}", t1=10.0 + i, serial_fraction=0.05) for i in range(20)]
    result = schedule_moldable(jobs, m=1 << 20, eps=0.1)
    print(result.makespan, result.certified_ratio)

See :mod:`repro.core` for the algorithms, :mod:`repro.workloads` for instance
generators, :mod:`repro.hardness` for the NP-hardness reduction,
:mod:`repro.simulator` for execution/verification and :mod:`repro.experiments`
for the reproduction of the paper's table and figures.
"""

from .core import (
    ALGORITHMS,
    Allotment,
    AmdahlJob,
    CommunicationJob,
    MoldableJob,
    OracleJob,
    PowerLawJob,
    RigidJob,
    Schedule,
    ScheduledJob,
    SchedulingResult,
    TabulatedJob,
    assert_valid_schedule,
    bounded_schedule,
    compressible_schedule,
    fptas_schedule,
    gamma,
    gamma_batch,
    ludwig_tiwari_estimator,
    makespan_lower_bound,
    mrt_schedule,
    ptas_schedule,
    schedule_moldable,
    two_approximation,
    validate_schedule,
)
from .online import Arrival, OnlineResult, OnlineScheduler, RegretReport
from .perf.megabatch import MegaBatch, MegaOracle, solve_mega
from .resilience import (
    DegradationReport,
    FaultPlan,
    JobKill,
    MachineFailure,
    RecoveryResult,
    execute_with_faults,
    random_fault_plan,
    recover_with_faults,
)
from .serve import (
    ChaosPolicy,
    FleetInstance,
    FleetReport,
    FleetScheduler,
    InstanceOutcome,
    ServePolicy,
    schedule_many,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MoldableJob",
    "TabulatedJob",
    "OracleJob",
    "AmdahlJob",
    "PowerLawJob",
    "CommunicationJob",
    "RigidJob",
    "Allotment",
    "Schedule",
    "ScheduledJob",
    "gamma",
    "gamma_batch",
    "validate_schedule",
    "assert_valid_schedule",
    "ludwig_tiwari_estimator",
    "makespan_lower_bound",
    "two_approximation",
    "mrt_schedule",
    "compressible_schedule",
    "bounded_schedule",
    "fptas_schedule",
    "ptas_schedule",
    "schedule_moldable",
    "SchedulingResult",
    "ALGORITHMS",
    "MegaBatch",
    "MegaOracle",
    "solve_mega",
    "FaultPlan",
    "MachineFailure",
    "JobKill",
    "random_fault_plan",
    "execute_with_faults",
    "recover_with_faults",
    "RecoveryResult",
    "DegradationReport",
    "Arrival",
    "OnlineScheduler",
    "OnlineResult",
    "RegretReport",
    "schedule_many",
    "FleetScheduler",
    "FleetInstance",
    "FleetReport",
    "InstanceOutcome",
    "ServePolicy",
    "ChaosPolicy",
]
