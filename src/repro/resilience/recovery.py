"""Failure-driven re-planning: drain-and-replan recovery with γ warm starts.

:func:`recover_with_faults` executes an instance against a
:class:`~repro.resilience.faults.FaultPlan` *with* re-scheduling: whenever
the fault state changes (a failure fires, a repair completes, a kill lands),
the loop

1. commits every entry that already finished (completed work is preserved),
2. discards the runs hit by the new failures (casualties restart from
   scratch — moldable jobs do not checkpoint) and drops killed jobs,
3. lets unaffected running entries *drain* to completion, and
4. re-plans every pending job on the machines available at the epoch via
   :func:`~repro.core.scheduler.schedule_moldable`, starting the new segment
   at the drain barrier (the latest end among the surviving running
   entries).

The epoch machinery itself — committed/continuing/pending partition, barrier
computation, abstract→physical span remapping, per-epoch algorithm-regime
re-check, cross-epoch :class:`~repro.perf.oracle.BatchedOracle` priming and
schedule stitching — lives in the shared :mod:`repro.core.replan` core
(:class:`~repro.core.replan.ReplanState`); this module contributes only the
fault semantics: which running entries are casualties, which jobs are
killed, and what the surviving machine intervals are at each epoch.  The
online arrival scheduler (:mod:`repro.online`) is the same core's other
client.

Segment schedules are solved on an *abstract* contiguous machine set
``[0, m_avail)`` — every driver assumes contiguous machines — and then
remapped span-by-span onto the physical surviving intervals (order
preserving, so disjoint abstract spans stay disjoint physically; the
remapping is plain integer arithmetic and works unchanged for
astronomically large machine counts).  Because each segment starts at or
after the drain barrier and all earlier work ends at or before it, the
stitched end-to-end schedule is conflict-free *by construction* and passes
the unmodified :func:`~repro.core.validation.validate_schedule` (with the
killed jobs removed from the expected set).

Consecutive re-plans reuse γ-search work two ways: the per-epoch
:class:`~repro.perf.oracle.BatchedOracle` is built with ``warm_start=True``
*and* primed from the previous epoch's oracle
(:meth:`~repro.perf.oracle.BatchedOracle.prime_from`), so each epoch's dual
search starts from the cached γ-thresholds of the epoch before it — the
pending set only shrinks and the estimator's target thresholds barely move
between epochs, which is exactly the regime the bracket/interpolation warm
start exploits.

The loop is deterministic: identical inputs produce identical stitched
schedules under every backend (the differential harness's ``faulty`` family
pins the scalar reference against the vectorized drivers and both
event-queue list-scheduler backends, bit for bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.job import MoldableJob
from repro.core.replan import PlacedEntry, ReplanState
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulingResult, schedule_moldable
from repro.core.validation import validate_schedule

from .executor import LostRun, spans_hit
from .faults import FaultPlan

__all__ = [
    "RecoveryError",
    "EpochRecord",
    "DegradationReport",
    "RecoveryResult",
    "recover_with_faults",
]


class RecoveryError(RuntimeError):
    """Recovery is impossible (e.g. no machine left) or produced an
    internally inconsistent schedule."""


@dataclass(frozen=True)
class EpochRecord:
    """What one fault epoch did to the running plan."""

    time: float
    machines_failed: int
    machines_repaired: int
    machines_available: int
    finished: int
    continuing: int
    lost: int
    killed: int
    requeued: int
    replanned: int
    barrier: float
    replan_latency: float
    replan_algorithm: Optional[str]


@dataclass
class DegradationReport:
    """How much the faults cost, relative to the fault-free plan."""

    fault_free_makespan: float
    recovered_makespan: float
    machines_lost: int
    jobs_killed: int
    jobs_restarted: int
    work_completed: float
    work_lost: float
    replans: int
    replan_latencies: List[float] = field(default_factory=list)
    gamma_probes: Optional[int] = None
    epochs: List[EpochRecord] = field(default_factory=list)

    @property
    def makespan_regret(self) -> float:
        """Absolute makespan increase caused by the faults (can be negative
        only through kills removing work)."""
        return self.recovered_makespan - self.fault_free_makespan

    @property
    def regret_ratio(self) -> float:
        if self.fault_free_makespan <= 0:
            return 1.0
        return self.recovered_makespan / self.fault_free_makespan

    def summary_lines(self) -> List[str]:
        lines = [
            f"fault-free makespan   {self.fault_free_makespan:.4f}",
            f"recovered makespan    {self.recovered_makespan:.4f}"
            f"  (regret {self.makespan_regret:+.4f}, x{self.regret_ratio:.3f})",
            f"machines lost         {self.machines_lost}",
            f"jobs killed           {self.jobs_killed}",
            f"jobs restarted        {self.jobs_restarted}",
            f"work completed/lost   {self.work_completed:.2f} / {self.work_lost:.2f}",
            f"re-plans              {self.replans}"
            + (
                f"  (max latency {max(self.replan_latencies) * 1e3:.1f} ms)"
                if self.replan_latencies
                else ""
            ),
        ]
        if self.gamma_probes is not None:
            lines.append(f"gamma probes          {self.gamma_probes}")
        return lines


@dataclass
class RecoveryResult:
    """Stitched fault-tolerant schedule plus its degradation report."""

    schedule: Schedule
    report: DegradationReport
    plan: FaultPlan
    fault_free: SchedulingResult
    killed: List[str]
    lost: List[LostRun]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def survivors(self) -> List[MoldableJob]:
        killed = set(self.killed)
        return [j for j in self.fault_free.schedule.jobs() if j.name not in killed]


def recover_with_faults(
    jobs: Sequence[MoldableJob],
    m: int,
    plan: FaultPlan,
    *,
    eps: float = 0.1,
    algorithm: str = "auto",
    backend: str = "vectorized",
    list_backend: Optional[str] = None,
    warm_start: bool = True,
    validate: bool = True,
) -> RecoveryResult:
    """Execute ``jobs`` on ``m`` machines under ``plan`` with re-planning.

    Parameters mirror :func:`~repro.core.scheduler.schedule_moldable`;
    ``warm_start`` additionally controls whether consecutive re-plans share
    γ-caches (``BatchedOracle(warm_start=...)`` plus cross-epoch
    :meth:`~repro.perf.oracle.BatchedOracle.prime_from` priming) — the bench
    suite's recovery rows measure exactly this toggle.  With ``validate``
    the stitched schedule is checked against the surviving (non-killed) job
    set and a failure raises :class:`RecoveryError` (it would be a bug in
    the stitching, not in the caller's input).
    """
    jobs = list(jobs)
    if plan.m != m:
        raise ValueError(f"fault plan is for m={plan.m} machines, scheduler called with m={m}")
    names = [j.name for j in jobs]
    by_name: Dict[str, MoldableJob] = {j.name: j for j in jobs}
    if plan.kills:
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique when the fault plan contains kills")
        for k in plan.kills:
            if k.job not in by_name:
                raise ValueError(f"fault plan kills unknown job {k.job!r}")

    fault_free = schedule_moldable(
        jobs, m, eps, algorithm=algorithm, validate=False, backend=backend,
        list_backend=list_backend,
    )

    if not jobs:
        report = DegradationReport(
            fault_free_makespan=0.0,
            recovered_makespan=0.0,
            machines_lost=plan.machines_lost_forever(),
            jobs_killed=0,
            jobs_restarted=0,
            work_completed=0.0,
            work_lost=0.0,
            replans=0,
        )
        return RecoveryResult(
            schedule=Schedule(m=m),
            report=report,
            plan=plan,
            fault_free=fault_free,
            killed=[],
            lost=[],
        )

    state = ReplanState(
        m=m,
        eps=eps,
        algorithm=algorithm,
        backend=backend,
        list_backend=list_backend,
        warm_start=warm_start,
        error=RecoveryError,
    )
    state.add_jobs(jobs)
    state.place_existing(fault_free.schedule.entries)

    killed: List[str] = []
    lost: List[LostRun] = []
    epochs: List[EpochRecord] = []

    for tau in plan.epochs():
        events = plan.events_at(tau)
        new_failures = events["failures"]
        kill_names = {k.job for k in events["kills"]}

        part = state.commit_epoch(tau)

        # casualties: running entries whose machines just went down
        continuing: List[PlacedEntry] = []
        n_lost = 0
        for p in part.running:
            hit = next((f for f in new_failures if spans_hit(p.spans, f)), None)
            if hit is not None:
                n_lost += 1
                lost.append(
                    LostRun(
                        job_name=p.job.name,
                        start=p.start,
                        cut=tau,
                        processors=p.processors,
                        scheduled_end=p.end,
                        cause="failure",
                        cause_time=tau,
                    )
                )
            else:
                continuing.append(p)

        # kills: running partials are lost, pending jobs simply leave the pool
        n_killed = 0
        if kill_names:
            still: List[PlacedEntry] = []
            for p in continuing:
                if p.job.name in kill_names:
                    lost.append(
                        LostRun(
                            job_name=p.job.name,
                            start=p.start,
                            cut=tau,
                            processors=p.processors,
                            scheduled_end=p.end,
                            cause="kill",
                            cause_time=tau,
                        )
                    )
                else:
                    still.append(p)
            continuing = still
            for name in kill_names:
                if state.drop_job(by_name[name]):
                    killed.append(name)
                    n_killed += 1

        outcome = state.replan_pending(tau, continuing, plan.available_intervals(tau))

        epochs.append(
            EpochRecord(
                time=tau,
                machines_failed=sum(f.count for f in new_failures),
                machines_repaired=sum(f.count for f in events["repairs"]),
                machines_available=outcome.m_avail,
                finished=len(part.finished),
                continuing=len(continuing),
                lost=n_lost,
                killed=n_killed,
                requeued=len(part.queued),
                replanned=outcome.replanned,
                barrier=outcome.barrier,
                replan_latency=outcome.latency,
                replan_algorithm=outcome.algorithm,
            )
        )

    # everything still placed after the last event runs to completion
    state.finish()

    stitched = state.stitch(
        metadata={
            "algorithm": f"recovery[{algorithm}]",
            "fault_events": len(plan),
            "replans": len(state.replan_latencies),
        }
    )

    survivors = [j for j in jobs if j.name not in set(killed)]
    if validate:
        verdict = validate_schedule(stitched, survivors)
        if not verdict.ok:
            raise RecoveryError(
                "stitched recovery schedule failed validation: "
                + "; ".join(verdict.violations[:5])
            )

    report = DegradationReport(
        fault_free_makespan=fault_free.schedule.makespan,
        recovered_makespan=stitched.makespan,
        machines_lost=plan.machines_lost_forever(),
        jobs_killed=len(killed),
        jobs_restarted=len({r.job_name for r in lost if r.job_name not in set(killed)}),
        work_completed=stitched.total_work,
        work_lost=sum(r.work_lost for r in lost),
        replans=len(state.replan_latencies),
        replan_latencies=state.replan_latencies,
        gamma_probes=state.gamma_probes,
        epochs=epochs,
    )
    return RecoveryResult(
        schedule=stitched,
        report=report,
        plan=plan,
        fault_free=fault_free,
        killed=killed,
        lost=lost,
    )
