"""Failure-driven re-planning: drain-and-replan recovery with γ warm starts.

:func:`recover_with_faults` executes an instance against a
:class:`~repro.resilience.faults.FaultPlan` *with* re-scheduling: whenever
the fault state changes (a failure fires, a repair completes, a kill lands),
the loop

1. commits every entry that already finished (completed work is preserved),
2. discards the runs hit by the new failures (casualties restart from
   scratch — moldable jobs do not checkpoint) and drops killed jobs,
3. lets unaffected running entries *drain* to completion, and
4. re-plans every pending job on the machines available at the epoch via
   :func:`~repro.core.scheduler.schedule_moldable`, starting the new segment
   at the drain barrier (the latest end among the surviving running
   entries).

Segment schedules are solved on an *abstract* contiguous machine set
``[0, m_avail)`` — every driver assumes contiguous machines — and then
remapped span-by-span onto the physical surviving intervals (order
preserving, so disjoint abstract spans stay disjoint physically; the
remapping is plain integer arithmetic and works unchanged for
astronomically large machine counts).  Because each segment starts at or
after the drain barrier and all earlier work ends at or before it, the
stitched end-to-end schedule is conflict-free *by construction* and passes
the unmodified :func:`~repro.core.validation.validate_schedule` (with the
killed jobs removed from the expected set).

Consecutive re-plans reuse γ-search work two ways: the per-epoch
:class:`~repro.perf.oracle.BatchedOracle` is built with ``warm_start=True``
*and* primed from the previous epoch's oracle
(:meth:`~repro.perf.oracle.BatchedOracle.prime_from`), so each epoch's dual
search starts from the cached γ-thresholds of the epoch before it — the
pending set only shrinks and the estimator's target thresholds barely move
between epochs, which is exactly the regime the bracket/interpolation warm
start exploits.

The loop is deterministic: identical inputs produce identical stitched
schedules under every backend (the differential harness's ``faulty`` family
pins the scalar reference against the vectorized drivers and both
event-queue list-scheduler backends, bit for bit).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backend import MAX_VECTORIZED_M
from repro.core.fptas import fptas_machine_threshold
from repro.core.job import MoldableJob
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.scheduler import SchedulingResult, schedule_moldable
from repro.core.validation import validate_schedule
from repro.perf.oracle import BatchedOracle

from .executor import LostRun, spans_hit
from .faults import FaultPlan, Interval

__all__ = [
    "RecoveryError",
    "EpochRecord",
    "DegradationReport",
    "RecoveryResult",
    "recover_with_faults",
]

_EPS = 1e-9


class RecoveryError(RuntimeError):
    """Recovery is impossible (e.g. no machine left) or produced an
    internally inconsistent schedule."""


@dataclass(frozen=True)
class EpochRecord:
    """What one fault epoch did to the running plan."""

    time: float
    machines_failed: int
    machines_repaired: int
    machines_available: int
    finished: int
    continuing: int
    lost: int
    killed: int
    requeued: int
    replanned: int
    barrier: float
    replan_latency: float
    replan_algorithm: Optional[str]


@dataclass
class DegradationReport:
    """How much the faults cost, relative to the fault-free plan."""

    fault_free_makespan: float
    recovered_makespan: float
    machines_lost: int
    jobs_killed: int
    jobs_restarted: int
    work_completed: float
    work_lost: float
    replans: int
    replan_latencies: List[float] = field(default_factory=list)
    gamma_probes: Optional[int] = None
    epochs: List[EpochRecord] = field(default_factory=list)

    @property
    def makespan_regret(self) -> float:
        """Absolute makespan increase caused by the faults (can be negative
        only through kills removing work)."""
        return self.recovered_makespan - self.fault_free_makespan

    @property
    def regret_ratio(self) -> float:
        if self.fault_free_makespan <= 0:
            return 1.0
        return self.recovered_makespan / self.fault_free_makespan

    def summary_lines(self) -> List[str]:
        lines = [
            f"fault-free makespan   {self.fault_free_makespan:.4f}",
            f"recovered makespan    {self.recovered_makespan:.4f}"
            f"  (regret {self.makespan_regret:+.4f}, x{self.regret_ratio:.3f})",
            f"machines lost         {self.machines_lost}",
            f"jobs killed           {self.jobs_killed}",
            f"jobs restarted        {self.jobs_restarted}",
            f"work completed/lost   {self.work_completed:.2f} / {self.work_lost:.2f}",
            f"re-plans              {self.replans}"
            + (
                f"  (max latency {max(self.replan_latencies) * 1e3:.1f} ms)"
                if self.replan_latencies
                else ""
            ),
        ]
        if self.gamma_probes is not None:
            lines.append(f"gamma probes          {self.gamma_probes}")
        return lines


@dataclass
class RecoveryResult:
    """Stitched fault-tolerant schedule plus its degradation report."""

    schedule: Schedule
    report: DegradationReport
    plan: FaultPlan
    fault_free: SchedulingResult
    killed: List[str]
    lost: List[LostRun]

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def survivors(self) -> List[MoldableJob]:
        killed = set(self.killed)
        return [j for j in self.fault_free.schedule.jobs() if j.name not in killed]


@dataclass
class _Placed:
    """An absolutely-placed entry awaiting completion."""

    job: MoldableJob
    start: float
    spans: List[Interval]
    duration: float
    duration_override: Optional[float]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def processors(self) -> int:
        return sum(count for _, count in self.spans)


def _remap_spans(
    spans: Sequence[Interval], available: Sequence[Interval], prefix: Sequence[int]
) -> List[Interval]:
    """Map abstract contiguous-machine spans onto the physical surviving
    intervals.

    ``available`` is the sorted disjoint interval list of up machines;
    ``prefix[i]`` is the number of available machines before interval ``i``.
    The mapping is the order-preserving bijection from abstract position
    ``p`` to the ``p``-th available physical machine, so disjoint abstract
    spans map to disjoint physical machine sets (possibly split into several
    physical spans each).
    """
    out: List[Interval] = []
    for first, count in spans:
        pos = first
        remaining = count
        i = bisect_right(prefix, pos) - 1
        while remaining > 0:
            base, end = available[i]
            offset = pos - prefix[i]
            width = (end - base) - offset
            if width <= 0:
                raise RecoveryError(
                    f"abstract span ({first}, {count}) exceeds the available machines"
                )
            take = min(remaining, width)
            out.append((base + offset, base + offset + take))
            remaining -= take
            pos += take
            i += 1
    # Schedule spans are (first, count) pairs; merge adjacency for stability.
    merged: List[Interval] = []
    for a, b in out:
        if merged and merged[-1][1] == a:
            merged[-1] = (merged[-1][0], b)
        else:
            merged.append((a, b))
    return [(a, b - a) for a, b in merged]


def _segment_algorithm(algorithm: str, n: int, m_avail: int, eps: float) -> str:
    """Per-epoch algorithm choice: respect the caller's pick where it stays
    applicable on the shrunken machine set, fall back deterministically
    otherwise (identically across backends, preserving bit-equality)."""
    if algorithm == "auto":
        return "auto"  # schedule_moldable re-derives the regime per segment
    if algorithm == "fptas" and m_avail < fptas_machine_threshold(n, eps):
        return "bounded"
    if algorithm == "exact" and (n > 7 or m_avail > 8):
        return "bounded"
    return algorithm


def recover_with_faults(
    jobs: Sequence[MoldableJob],
    m: int,
    plan: FaultPlan,
    *,
    eps: float = 0.1,
    algorithm: str = "auto",
    backend: str = "vectorized",
    list_backend: Optional[str] = None,
    warm_start: bool = True,
    validate: bool = True,
) -> RecoveryResult:
    """Execute ``jobs`` on ``m`` machines under ``plan`` with re-planning.

    Parameters mirror :func:`~repro.core.scheduler.schedule_moldable`;
    ``warm_start`` additionally controls whether consecutive re-plans share
    γ-caches (``BatchedOracle(warm_start=...)`` plus cross-epoch
    :meth:`~repro.perf.oracle.BatchedOracle.prime_from` priming) — the bench
    suite's recovery rows measure exactly this toggle.  With ``validate``
    the stitched schedule is checked against the surviving (non-killed) job
    set and a failure raises :class:`RecoveryError` (it would be a bug in
    the stitching, not in the caller's input).
    """
    jobs = list(jobs)
    if plan.m != m:
        raise ValueError(f"fault plan is for m={plan.m} machines, scheduler called with m={m}")
    names = [j.name for j in jobs]
    by_name: Dict[str, MoldableJob] = {j.name: j for j in jobs}
    if plan.kills:
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique when the fault plan contains kills")
        for k in plan.kills:
            if k.job not in by_name:
                raise ValueError(f"fault plan kills unknown job {k.job!r}")

    fault_free = schedule_moldable(
        jobs, m, eps, algorithm=algorithm, validate=False, backend=backend,
        list_backend=list_backend,
    )

    if not jobs:
        report = DegradationReport(
            fault_free_makespan=0.0,
            recovered_makespan=0.0,
            machines_lost=plan.machines_lost_forever(),
            jobs_killed=0,
            jobs_restarted=0,
            work_completed=0.0,
            work_lost=0.0,
            replans=0,
        )
        return RecoveryResult(
            schedule=Schedule(m=m),
            report=report,
            plan=plan,
            fault_free=fault_free,
            killed=[],
            lost=[],
        )

    # --- mutable state -----------------------------------------------------
    pending: Dict[int, MoldableJob] = {id(j): j for j in jobs}  # not done, not killed
    committed: List[_Placed] = []
    killed: List[str] = []
    lost: List[LostRun] = []
    epochs: List[EpochRecord] = []
    replan_latencies: List[float] = []
    gamma_probes = 0 if backend == "vectorized" else None
    prev_oracle: Optional[BatchedOracle] = None

    current: List[_Placed] = [
        _Placed(
            job=e.job,
            start=e.start,
            spans=list(e.spans),
            duration=e.duration,
            duration_override=e.duration_override,
        )
        for e in fault_free.schedule.entries
    ]

    for tau in plan.epochs():
        events = plan.events_at(tau)
        new_failures = events["failures"]
        kill_names = {k.job for k in events["kills"]}

        finished = [p for p in current if p.end <= tau + _EPS]
        for p in finished:
            committed.append(p)
            pending.pop(id(p.job), None)

        live = [p for p in current if p.end > tau + _EPS]
        running = [p for p in live if p.start < tau - _EPS]
        queued = [p for p in live if p.start >= tau - _EPS]

        # casualties: running entries whose machines just went down
        continuing: List[_Placed] = []
        n_lost = 0
        for p in running:
            hit = next((f for f in new_failures if spans_hit(p.spans, f)), None)
            if hit is not None:
                n_lost += 1
                lost.append(
                    LostRun(
                        job_name=p.job.name,
                        start=p.start,
                        cut=tau,
                        processors=p.processors,
                        scheduled_end=p.end,
                        cause="failure",
                        cause_time=tau,
                    )
                )
            else:
                continuing.append(p)

        # kills: running partials are lost, pending jobs simply leave the pool
        n_killed = 0
        if kill_names:
            still: List[_Placed] = []
            for p in continuing:
                if p.job.name in kill_names:
                    lost.append(
                        LostRun(
                            job_name=p.job.name,
                            start=p.start,
                            cut=tau,
                            processors=p.processors,
                            scheduled_end=p.end,
                            cause="kill",
                            cause_time=tau,
                        )
                    )
                else:
                    still.append(p)
            continuing = still
            for name in kill_names:
                job = by_name[name]
                if id(job) in pending:
                    pending.pop(id(job))
                    killed.append(name)
                    n_killed += 1

        # re-plan everything pending that is not currently draining
        draining = {id(p.job) for p in continuing}
        to_plan = [j for j in jobs if id(j) in pending and id(j) not in draining]
        replanned = 0
        latency = 0.0
        seg_algorithm: Optional[str] = None
        available = plan.available_intervals(tau)
        m_avail = sum(end - first for first, end in available)
        if to_plan:
            if m_avail < 1:
                raise RecoveryError(
                    f"no machines available at epoch {tau} but {len(to_plan)} jobs are pending"
                )
            barrier = max([tau] + [p.end for p in continuing])
            seg_algorithm = _segment_algorithm(algorithm, len(to_plan), m_avail, eps)
            oracle: Optional[BatchedOracle] = None
            # only two_approx / fptas (and auto, which may resolve to fptas)
            # accept an external oracle — don't build one the driver ignores
            if (
                backend == "vectorized"
                and m_avail <= MAX_VECTORIZED_M
                and seg_algorithm in ("two_approx", "fptas", "auto")
            ):
                oracle = BatchedOracle(to_plan, m_avail, warm_start=warm_start)
                if warm_start and prev_oracle is not None:
                    oracle.prime_from(prev_oracle)
            t0 = perf_counter()
            segment = schedule_moldable(
                to_plan,
                m_avail,
                eps,
                algorithm=seg_algorithm,
                validate=False,
                backend=backend,
                oracle=oracle,
                list_backend=list_backend,
            )
            latency = perf_counter() - t0
            replan_latencies.append(latency)
            if oracle is not None:
                gamma_probes = (gamma_probes or 0) + oracle.gamma_probes
                prev_oracle = oracle
            replanned = len(to_plan)
            prefix = [0]
            for first, end in available:
                prefix.append(prefix[-1] + (end - first))
            placed: List[_Placed] = []
            for e in segment.schedule.entries:
                placed.append(
                    _Placed(
                        job=e.job,
                        start=barrier + e.start,
                        spans=_remap_spans(e.spans, available, prefix),
                        duration=e.duration,
                        duration_override=e.duration_override,
                    )
                )
            current = continuing + placed
        else:
            barrier = tau
            current = continuing

        epochs.append(
            EpochRecord(
                time=tau,
                machines_failed=sum(f.count for f in new_failures),
                machines_repaired=sum(f.count for f in events["repairs"]),
                machines_available=m_avail,
                finished=len(finished),
                continuing=len(continuing),
                lost=n_lost,
                killed=n_killed,
                requeued=len(queued),
                replanned=replanned,
                barrier=barrier,
                replan_latency=latency,
                replan_algorithm=seg_algorithm,
            )
        )

    # everything still placed after the last event runs to completion
    for p in current:
        committed.append(p)
        pending.pop(id(p.job), None)

    if pending:  # pragma: no cover - internal invariant
        raise RecoveryError(f"jobs left unplanned after all epochs: {sorted(j.name for j in pending.values())}")

    stitched = Schedule(
        m=m,
        metadata={
            "algorithm": f"recovery[{algorithm}]",
            "fault_events": len(plan),
            "replans": len(replan_latencies),
        },
    )
    for p in committed:
        stitched.add(p.job, p.start, p.spans, duration_override=p.duration_override)

    survivors = [j for j in jobs if j.name not in set(killed)]
    if validate:
        verdict = validate_schedule(stitched, survivors)
        if not verdict.ok:
            raise RecoveryError(
                "stitched recovery schedule failed validation: "
                + "; ".join(verdict.violations[:5])
            )

    report = DegradationReport(
        fault_free_makespan=fault_free.schedule.makespan,
        recovered_makespan=stitched.makespan,
        machines_lost=plan.machines_lost_forever(),
        jobs_killed=len(killed),
        jobs_restarted=len({r.job_name for r in lost if r.job_name not in set(killed)}),
        work_completed=stitched.total_work,
        work_lost=sum(r.work_lost for r in lost),
        replans=len(replan_latencies),
        replan_latencies=replan_latencies,
        gamma_probes=gamma_probes,
        epochs=epochs,
    )
    return RecoveryResult(
        schedule=stitched,
        report=report,
        plan=plan,
        fault_free=fault_free,
        killed=killed,
        lost=lost,
    )
