"""Fault injection and recovery: machine failures & job kills as
first-class events, with warm-started survivor re-planning.

* :mod:`repro.resilience.faults` — declarative :class:`FaultPlan`
  (transient/permanent machine failures, job kills), seeded-random plans;
* :mod:`repro.resilience.executor` — fault-aware replay of a fixed
  schedule (no re-planning): per-epoch job fates, preserved completed work,
  truncated partial-run traces;
* :mod:`repro.resilience.recovery` — drain-and-replan recovery loop
  emitting a stitched validator-clean :class:`~repro.core.schedule.Schedule`
  plus a :class:`DegradationReport`.
"""

from .executor import (
    FATE_CONTINUING,
    FATE_FINISHED,
    FATE_KILLED,
    FATE_LOST,
    FATE_QUEUED,
    EpochReport,
    FaultyExecution,
    LostRun,
    execute_with_faults,
)
from .faults import FaultPlan, JobKill, MachineFailure, random_fault_plan
from .recovery import (
    DegradationReport,
    EpochRecord,
    RecoveryError,
    RecoveryResult,
    recover_with_faults,
)

__all__ = [
    "FaultPlan",
    "JobKill",
    "MachineFailure",
    "random_fault_plan",
    "execute_with_faults",
    "FaultyExecution",
    "EpochReport",
    "LostRun",
    "FATE_FINISHED",
    "FATE_CONTINUING",
    "FATE_LOST",
    "FATE_KILLED",
    "FATE_QUEUED",
    "recover_with_faults",
    "RecoveryResult",
    "RecoveryError",
    "DegradationReport",
    "EpochRecord",
]
