"""Declarative fault plans: machine failures and job kills.

A :class:`FaultPlan` is a serialisable description of everything that goes
wrong during the execution of a schedule:

* :class:`MachineFailure` — a contiguous span of machines goes down at
  ``time``.  A *transient* failure (``repair_time`` set) brings the machines
  back at ``time + repair_time``; a *permanent* one (``repair_time=None``)
  never does.
* :class:`JobKill` — a job (identified by name) is cancelled at ``time``:
  if it is running its partial work is discarded, if it is still queued it
  simply never runs.  Kills of already-finished jobs are no-ops.

The plan is pure data — it does not know about schedules.  The fault-aware
replay (:mod:`repro.resilience.executor`) and the recovery loop
(:mod:`repro.resilience.recovery`) interpret it.  Machine availability is
answered as *interval* arithmetic over ``[0, m)`` (``available_intervals``),
so plans work unchanged for astronomically large machine counts (the
compact-encoding regime) without ever materialising per-machine state.

:func:`random_fault_plan` draws a seeded-random plan whose failures are
guaranteed to leave at least ``min_alive`` machines up at every instant, so
recovery always has somewhere to re-plan the survivors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "MachineFailure",
    "JobKill",
    "FaultPlan",
    "random_fault_plan",
]

Interval = Tuple[int, int]
"""A half-open machine interval ``(first, end)``."""


@dataclass(frozen=True)
class MachineFailure:
    """``count`` machines starting at ``first`` go down at ``time``.

    ``repair_time=None`` marks the failure permanent; otherwise the machines
    come back up at ``time + repair_time`` (the repair instant itself counts
    as *up*, matching the half-open down window ``[time, time+repair_time)``).
    """

    time: float
    first: int
    count: int = 1
    repair_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"failure time must be non-negative, got {self.time}")
        if self.count < 1:
            raise ValueError(f"failure span count must be >= 1, got {self.count}")
        if self.first < 0:
            raise ValueError(f"failure span start must be >= 0, got {self.first}")
        if self.repair_time is not None and self.repair_time <= 0:
            raise ValueError(f"repair_time must be positive, got {self.repair_time}")

    @property
    def permanent(self) -> bool:
        return self.repair_time is None

    @property
    def down_until(self) -> float:
        """End of the down window (``inf`` for permanent failures)."""
        if self.repair_time is None:
            return float("inf")
        return self.time + self.repair_time

    @property
    def span(self) -> Interval:
        return (self.first, self.first + self.count)


@dataclass(frozen=True)
class JobKill:
    """Job ``job`` (by name) is cancelled at ``time``."""

    time: float
    job: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"kill time must be non-negative, got {self.time}")


def _merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Union of half-open intervals as a sorted disjoint list."""
    merged: List[Interval] = []
    for first, end in sorted(i for i in intervals if i[1] > i[0]):
        if merged and first <= merged[-1][1]:
            prev_first, prev_end = merged[-1]
            merged[-1] = (prev_first, max(prev_end, end))
        else:
            merged.append((first, end))
    return merged


def _complement(intervals: Sequence[Interval], m: int) -> List[Interval]:
    """``[0, m)`` minus a sorted disjoint interval list."""
    out: List[Interval] = []
    cursor = 0
    for first, end in intervals:
        if first > cursor:
            out.append((cursor, min(first, m)))
        cursor = max(cursor, end)
        if cursor >= m:
            break
    if cursor < m:
        out.append((cursor, m))
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault scenario for ``m`` machines.

    ``failures`` and ``kills`` are stored sorted by time; availability
    queries are answered from the failure windows directly (O(F log F) per
    query with F failures — fault plans are small), so no incremental
    per-machine state exists to go stale.
    """

    m: int
    failures: Tuple[MachineFailure, ...] = field(default_factory=tuple)
    kills: Tuple[JobKill, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        for f in self.failures:
            if f.first + f.count > self.m:
                raise ValueError(
                    f"failure span ({f.first}, {f.count}) exceeds machine count m={self.m}"
                )
        object.__setattr__(
            self, "failures", tuple(sorted(self.failures, key=lambda f: (f.time, f.first)))
        )
        object.__setattr__(
            self, "kills", tuple(sorted(self.kills, key=lambda k: (k.time, k.job)))
        )

    def __len__(self) -> int:
        return len(self.failures) + len(self.kills)

    # ------------------------------------------------------------ timeline
    def epochs(self) -> List[float]:
        """Sorted distinct instants at which the fault state changes:
        failure onsets, repair completions and kill times."""
        times = {f.time for f in self.failures}
        times.update(f.down_until for f in self.failures if not f.permanent)
        times.update(k.time for k in self.kills)
        return sorted(times)

    def events_at(self, t: float) -> Dict[str, list]:
        """The events firing exactly at instant ``t``."""
        return {
            "failures": [f for f in self.failures if f.time == t],
            "repairs": [f for f in self.failures if not f.permanent and f.down_until == t],
            "kills": [k for k in self.kills if k.time == t],
        }

    # --------------------------------------------------------- availability
    def down_intervals(self, t: float) -> List[Interval]:
        """Machines down at instant ``t`` (merged, sorted).  A machine is down
        during the half-open window ``[time, time + repair_time)``."""
        return _merge_intervals(
            [f.span for f in self.failures if f.time <= t < f.down_until]
        )

    def available_intervals(self, t: float) -> List[Interval]:
        """Machines up at instant ``t`` as sorted disjoint intervals."""
        return _complement(self.down_intervals(t), self.m)

    def available_count(self, t: float) -> int:
        return sum(end - first for first, end in self.available_intervals(t))

    def machines_lost_forever(self) -> int:
        """Number of machines permanently down once every event has fired."""
        return sum(
            end - first
            for first, end in _merge_intervals(
                [f.span for f in self.failures if f.permanent]
            )
        )

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {
            "m": int(self.m),
            "failures": [
                {
                    "time": f.time,
                    "first": f.first,
                    "count": f.count,
                    "repair_time": f.repair_time,
                }
                for f in self.failures
            ],
            "kills": [{"time": k.time, "job": k.job} for k in self.kills],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            m=int(payload["m"]),
            failures=tuple(
                MachineFailure(
                    time=float(f["time"]),
                    first=int(f["first"]),
                    count=int(f["count"]),
                    repair_time=(
                        None if f.get("repair_time") is None else float(f["repair_time"])
                    ),
                )
                for f in payload.get("failures", ())
            ),
            kills=tuple(
                JobKill(time=float(k["time"]), job=str(k["job"]))
                for k in payload.get("kills", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


SeedLike = Union[int, np.random.Generator, None]


def random_fault_plan(
    job_names: Sequence[str],
    m: int,
    *,
    seed: SeedLike = None,
    failures: Optional[int] = None,
    kills: Optional[int] = None,
    horizon: float = 1.0,
    transient_fraction: float = 0.5,
    max_fraction: float = 0.5,
    min_alive: int = 1,
) -> FaultPlan:
    """Draw a seeded-random fault plan.

    ``failures``/``kills`` default to small random counts.  Failure spans are
    drawn up to ``max_fraction * m`` machines wide; each candidate failure is
    accepted only if, together with the already accepted ones, at least
    ``min_alive`` machines stay up at every instant (checked at the finitely
    many availability change points), so recovery always has machines left.
    Candidates violating the invariant are re-drawn a bounded number of times
    and then dropped — a plan may therefore contain fewer failures than
    requested, never more.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if min_alive < 1 or min_alive > m:
        raise ValueError(f"min_alive must lie in [1, {m}]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n_fail = int(rng.integers(1, 4)) if failures is None else int(failures)
    n_kill = int(rng.integers(0, 2)) if kills is None else int(kills)

    accepted: List[MachineFailure] = []
    max_count = max(1, int(m * max_fraction))
    for _ in range(n_fail):
        for _attempt in range(32):
            time = float(rng.uniform(0.0, horizon))
            count = int(rng.integers(1, max_count + 1))
            if count > m:
                count = m
            first = int(rng.integers(0, m - count + 1))
            transient = bool(rng.uniform() < transient_fraction)
            repair = float(rng.uniform(horizon * 0.1, horizon * 0.6)) if transient else None
            candidate = MachineFailure(time=time, first=first, count=count, repair_time=repair)
            trial = FaultPlan(m=m, failures=tuple(accepted) + (candidate,))
            if all(
                trial.available_count(f.time) >= min_alive for f in trial.failures
            ):
                accepted.append(candidate)
                break

    kill_events: List[JobKill] = []
    names = list(job_names)
    if names and n_kill > 0:
        chosen = rng.choice(len(names), size=min(n_kill, len(names)), replace=False)
        for i in np.atleast_1d(chosen).tolist():
            kill_events.append(JobKill(time=float(rng.uniform(0.0, horizon)), job=names[i]))

    return FaultPlan(m=m, failures=tuple(accepted), kills=tuple(kill_events))
