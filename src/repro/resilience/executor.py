"""Fault-aware replay of a schedule against a :class:`FaultPlan`.

:func:`execute_with_faults` answers the *descriptive* question: if this
schedule were executed verbatim while the plan's failures and kills fire,
what would actually happen?  No re-planning takes place here (that is
:mod:`repro.resilience.recovery`); the executor

* commits every entry the faults never touch (completed work is preserved),
* truncates an entry at the first instant a failure hits one of its
  machines or a kill targets its job (partial work is *lost*, moldable jobs
  do not checkpoint),
* marks entries that can never launch (their machines are down at their
  start, or their job was killed before it started) as lost with zero work,
* classifies every entry at every fault epoch — ``finished`` /
  ``continuing`` / ``lost`` / ``killed`` / ``queued`` — into per-epoch
  :class:`EpochReport` records.

The result's :meth:`FaultyExecution.trace_schedule` re-emits the replay as
a plain :class:`~repro.core.schedule.Schedule` whose interrupted entries
carry a truncated ``duration_override`` — exactly the mid-run-stop /
partial-work trace shape the discrete-event simulator
(:func:`repro.simulator.engine.simulate_schedule`) must handle identically
under its scalar and columnar backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import Schedule, ScheduledJob

from .faults import FaultPlan, Interval, MachineFailure

__all__ = [
    "FATE_FINISHED",
    "FATE_CONTINUING",
    "FATE_LOST",
    "FATE_KILLED",
    "FATE_QUEUED",
    "LostRun",
    "EpochReport",
    "FaultyExecution",
    "execute_with_faults",
]

_EPS = 1e-9

# Job fates at a fault epoch.
FATE_FINISHED = "finished"
FATE_CONTINUING = "continuing"
FATE_LOST = "lost"
FATE_KILLED = "killed"
FATE_QUEUED = "queued"


def spans_hit(spans: Sequence[Interval], failure: MachineFailure) -> bool:
    """Whether any of the entry's machine spans intersects the failed span."""
    f_first, f_end = failure.span
    return any(first < f_end and f_first < first + count for first, count in spans)


@dataclass(frozen=True)
class LostRun:
    """A (partial) run discarded by a failure or kill."""

    job_name: str
    start: float
    cut: float
    processors: int
    scheduled_end: float
    cause: str  # "failure" or "kill"
    cause_time: float

    @property
    def work_lost(self) -> float:
        return self.processors * max(0.0, self.cut - self.start)


@dataclass(frozen=True)
class EpochReport:
    """Per-entry fates at one fault epoch (one distinct event instant)."""

    time: float
    failed: Tuple[Interval, ...]
    repaired: Tuple[Interval, ...]
    kills: Tuple[str, ...]
    fates: Dict[str, str]
    available_after: int

    def count(self, fate: str) -> int:
        return sum(1 for f in self.fates.values() if f == fate)


@dataclass
class FaultyExecution:
    """Outcome of replaying one schedule against one fault plan."""

    schedule: Schedule
    plan: FaultPlan
    completed: List[ScheduledJob]
    lost: List[LostRun]
    killed: List[str]
    epochs: List[EpochReport] = field(default_factory=list)

    @property
    def work_completed(self) -> float:
        return sum(e.work for e in self.completed)

    @property
    def work_lost(self) -> float:
        return sum(r.work_lost for r in self.lost)

    @property
    def unfinished_jobs(self) -> List[str]:
        """Jobs that neither finished nor were killed (they need recovery)."""
        done = {e.job.name for e in self.completed}
        killed = set(self.killed)
        return [
            e.job.name
            for e in self.schedule.entries
            if e.job.name not in done and e.job.name not in killed
        ]

    def completed_schedule(self) -> Schedule:
        """Only the entries that ran to completion (always conflict-free)."""
        out = Schedule(m=self.schedule.m, metadata={"faulty_replay": "completed"})
        for entry in self.completed:
            out.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        return out

    def trace_schedule(self) -> Schedule:
        """The full replay as a schedule: completed entries verbatim plus the
        interrupted runs truncated at their cut instant via
        ``duration_override`` (zero-length launch failures are omitted).

        Understating overrides are a *validator* violation by design — the
        simulator replays them as genuine early stops, which is what makes
        this the canonical partial-work trace shape for the scalar/columnar
        simulator parity tests.
        """
        out = Schedule(m=self.schedule.m, metadata={"faulty_replay": "trace"})
        cuts = {(r.job_name, r.start): r.cut for r in self.lost}
        for entry in self.schedule.entries:
            key = (entry.job.name, entry.start)
            if key in cuts:
                truncated = cuts[key] - entry.start
                if truncated > _EPS:
                    out.add(entry.job, entry.start, entry.spans, duration_override=truncated)
            else:
                out.add(entry.job, entry.start, entry.spans, duration_override=entry.duration_override)
        return out


def _first_violation(
    entry: ScheduledJob, plan: FaultPlan
) -> Optional[Tuple[float, str, float]]:
    """Earliest instant the entry's run is invalidated, if any.

    Returns ``(cut, cause, cause_time)`` where ``cut`` is the truncation
    instant (clamped to the entry's start for launch failures) or ``None``
    when the entry runs to completion.  Kills win ties against failures at
    the same instant (the job is gone either way, but the fate is
    ``killed``).
    """
    start, end = entry.start, entry.end
    best: Optional[Tuple[float, str, float]] = None

    def consider(instant: float, cause: str, cause_time: float) -> None:
        nonlocal best
        cut = max(start, instant)
        if best is None or cut < best[0] - _EPS or (cut <= best[0] + _EPS and cause == "kill"):
            best = (cut, cause, cause_time)

    for f in plan.failures:
        if not spans_hit(entry.spans, f):
            continue
        # the down window [f.time, down_until) must intersect the run [start, end)
        if f.time < end - _EPS and f.down_until > start + _EPS:
            consider(f.time, "failure", f.time)
    for k in plan.kills:
        if k.job == entry.job.name and k.time < end - _EPS:
            consider(k.time, "kill", k.time)
    return best


def execute_with_faults(schedule: Schedule, plan: FaultPlan) -> FaultyExecution:
    """Replay ``schedule`` against ``plan`` without re-planning."""
    if plan.m != schedule.m:
        raise ValueError(
            f"fault plan is for m={plan.m} machines but the schedule uses m={schedule.m}"
        )
    known = {e.job.name for e in schedule.entries}
    for k in plan.kills:
        if k.job not in known:
            raise ValueError(f"fault plan kills unknown job {k.job!r}")

    entries = list(schedule.entries)
    resolutions = [_first_violation(e, plan) for e in entries]

    completed: List[ScheduledJob] = []
    lost: List[LostRun] = []
    killed: List[str] = []
    for entry, res in zip(entries, resolutions):
        if res is None:
            completed.append(entry)
            continue
        cut, cause, cause_time = res
        lost.append(
            LostRun(
                job_name=entry.job.name,
                start=entry.start,
                cut=cut,
                processors=entry.processors,
                scheduled_end=entry.end,
                cause=cause,
                cause_time=cause_time,
            )
        )
        if cause == "kill":
            killed.append(entry.job.name)

    # Per-epoch classification, derived from the same resolutions.
    epochs: List[EpochReport] = []
    for tau in plan.epochs():
        events = plan.events_at(tau)
        fates: Dict[str, str] = {}
        for entry, res in zip(entries, resolutions):
            name = entry.job.name
            if res is not None and res[2] < tau - _EPS:
                continue  # already resolved by an earlier event
            if res is not None and abs(res[2] - tau) <= _EPS:
                fates[name] = FATE_KILLED if res[1] == "kill" else FATE_LOST
            elif entry.end <= tau + _EPS:
                fates[name] = FATE_FINISHED
            elif entry.start >= tau - _EPS:
                fates[name] = FATE_QUEUED
            else:
                fates[name] = FATE_CONTINUING
        epochs.append(
            EpochReport(
                time=tau,
                failed=tuple(f.span for f in events["failures"]),
                repaired=tuple(f.span for f in events["repairs"]),
                kills=tuple(k.job for k in events["kills"]),
                fates=fates,
                available_after=plan.available_count(tau),
            )
        )

    return FaultyExecution(
        schedule=schedule,
        plan=plan,
        completed=completed,
        lost=lost,
        killed=killed,
        epochs=epochs,
    )
