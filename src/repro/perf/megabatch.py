"""Mega-batch fleet solving: N independent instances, one lockstep γ-search.

``repro.serve`` (the process fleet) isolates instances in worker subprocesses;
each worker still pays the per-call Python dispatch of its own dual search.
This module removes that per-instance dispatch *within* a process: it packs
many independent instances' jobs into one shared
:class:`~repro.perf.arrays.JobArrayBundle` and drives every instance's full
dual search + list-scheduling phase in lockstep, so each γ-bisection level and
each estimator evaluation is one batched kernel call per job class across the
*whole fleet*.  On small-n instances — where per-call dispatch dominates — the
batched kernels amortise across the fleet and throughput scales with the pack
size; the process fleet composes on top (each worker solves a pack).

Bit-identity contract
---------------------
``solve_mega(instances)`` returns, per instance, exactly the
:class:`~repro.core.scheduler.SchedulingResult` that a solo
``schedule_moldable(jobs, m, eps, algorithm=...)`` call produces — the same
schedule columns, makespan, lower bound, metadata and per-oracle probe
accounting.  This holds because

* each instance's jobs occupy a contiguous *segment* of the shared bundle,
  and every kernel is elementwise in ``(job, k)`` — a segment view evaluates
  the same formulas on the same parameters as a private bundle;
* the γ-bisection advances every job's ``(lo, hi, mid)`` trajectory
  independently, so interleaving many instances' searches in one
  :func:`~repro.perf.oracle.lockstep_gamma_round` changes neither the probed
  counts nor the results (per-segment ``stats`` are attributed back exactly);
* the drivers here are line-for-line transcriptions of the solo drivers
  (:func:`~repro.core.bounds.ludwig_tiwari_estimator`,
  :func:`~repro.core.dual.dual_binary_search`,
  :func:`~repro.core.two_approx.two_approximation`,
  :func:`~repro.core.fptas.fptas_schedule`) rewritten as generators that
  *yield* their oracle requests — the request streams are identical, only
  their execution is batched across segments.

The differential harness's ``mega`` mode enforces the contract: every fuzz
case is solved solo and inside a random co-batch, and the schedules must be
bit-identical column for column.

Instances whose algorithm resolves to something other than ``two_approx`` /
``fptas`` (or whose ``m`` exceeds the vectorized boundary) fall back to a solo
``schedule_moldable`` call — trivially identical.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.allotment import Allotment
from ..core.backend import MAX_VECTORIZED_M
from ..core.bounds import EstimatorResult
from ..core.dual import DualSearchResult
from ..core.fptas import fptas_machine_threshold
from ..core.job import MoldableJob
from ..core.list_scheduling import list_schedule
from ..core.schedule import Schedule
from ..core.scheduler import ALGORITHMS, SchedulingResult, schedule_moldable
from ..core.validation import assert_valid_schedule
from .arrays import JobArrayBundle
from .oracle import BatchedOracle, lockstep_gamma_round
from .schedule_builder import schedule_from_arrays

__all__ = ["MegaBatch", "MegaOracle", "solve_mega"]


class _SegmentView(JobArrayBundle):
    """A contiguous-slice view of a parent bundle, presenting the
    :class:`JobArrayBundle` interface over one instance's jobs.

    ``groups`` aliases the parent's group list (the lockstep round requires
    one shared kernel table), while ``group_of`` / ``pos_in_group`` are slices
    of the parent's arrays — so segment-local job indices map straight to the
    parent's kernel parameters and every evaluation is bit-identical to a
    private bundle over the same jobs.
    """

    def __init__(self, parent: JobArrayBundle, start: int, stop: int) -> None:
        # deliberately does NOT call JobArrayBundle.__init__: no re-grouping
        self.jobs = parent.jobs[start:stop]
        self.group_of = parent.group_of[start:stop]
        self.pos_in_group = parent.pos_in_group[start:stop]
        self.groups = parent.groups
        # static partition over the segment; groups absent from the segment
        # are skipped (the parent's eval_all never sees an empty group, some
        # kernels reject empty position arrays)
        self._parts = []
        for gid in np.unique(self.group_of).tolist():
            idx = np.flatnonzero(self.group_of == gid)
            self._parts.append((self.groups[gid], idx, self.pos_in_group[idx]))

    def eval_all(self, ks) -> np.ndarray:
        n = len(self.jobs)
        ks = np.broadcast_to(np.asarray(ks, dtype=np.float64), (n,))
        out = np.empty(n, dtype=np.float64)
        for group, idx, pos in self._parts:
            out[idx] = group.eval(pos, ks[idx])
        return out


class _Segment:
    """One instance inside a mega batch."""

    __slots__ = (
        "slot",
        "jobs",
        "m",
        "eps",
        "chosen",
        "validate",
        "list_backend",
        "start",
        "stop",
        "n",
        "oracle",
    )

    def __init__(self, slot, jobs, m, eps, chosen, validate, list_backend):
        self.slot = slot
        self.jobs = jobs
        self.m = m
        self.eps = eps
        self.chosen = chosen
        self.validate = validate
        self.list_backend = list_backend
        self.n = len(jobs)
        self.start = 0
        self.stop = 0
        self.oracle: Optional[BatchedOracle] = None


class MegaBatch:
    """N instances' jobs concatenated into one shared bundle with per-instance
    segment offsets; each segment gets a :class:`BatchedOracle` over its own
    ``(jobs, m)`` whose evaluations run through a segment view of the shared
    bundle."""

    def __init__(self, segments: Sequence[_Segment], *, warm_start: bool = True) -> None:
        self.segments: List[_Segment] = list(segments)
        all_jobs: List[MoldableJob] = []
        for seg in self.segments:
            seg.start = len(all_jobs)
            all_jobs.extend(seg.jobs)
            seg.stop = len(all_jobs)
        self.bundle = JobArrayBundle(all_jobs)
        for seg in self.segments:
            view = _SegmentView(self.bundle, seg.start, seg.stop)
            seg.oracle = BatchedOracle(
                seg.jobs, seg.m, warm_start=warm_start, bundle=view
            )

    def __len__(self) -> int:
        return len(self.segments)


class MegaOracle:
    """Batches one round of the segments' oracle requests.

    γ-requests go through :func:`lockstep_gamma_round` (one kernel evaluation
    per job class per bisection level across all requesting segments, with
    each segment's threshold cache and warm-start brackets intact);
    whole-segment time evaluations are concatenated into a single
    ``eval_at`` on the shared bundle.
    """

    def __init__(self, batch: MegaBatch) -> None:
        self.batch = batch
        self.stats = {"gamma_rounds": 0, "eval_rounds": 0}

    def gamma_round(self, requests: Sequence[Tuple[_Segment, float]]) -> List[np.ndarray]:
        self.stats["gamma_rounds"] += 1
        return lockstep_gamma_round([(seg.oracle, t) for seg, t in requests])

    def eval_round(self, requests: Sequence[Tuple[_Segment, np.ndarray]]) -> List[np.ndarray]:
        self.stats["eval_rounds"] += 1
        idx_parts = []
        ks_parts = []
        for seg, ks in requests:
            idx_parts.append(np.arange(seg.start, seg.stop, dtype=np.int64))
            ks_parts.append(np.broadcast_to(np.asarray(ks, dtype=np.float64), (seg.n,)))
        flat = self.batch.bundle.eval_at(
            np.concatenate(idx_parts), np.concatenate(ks_parts)
        )
        out: List[np.ndarray] = []
        offset = 0
        for seg, _ in requests:
            out.append(flat[offset : offset + seg.n])
            offset += seg.n
        return out


# ---------------------------------------------------------------------------
# generator transcriptions of the solo drivers
#
# Each generator yields ("gamma", threshold) or ("eval", per-job counts) and
# receives the answer back via .send(); the request sequence is exactly the
# solo driver's oracle-call sequence, so caches, warm starts and stats evolve
# identically.  Return values travel on StopIteration.
# ---------------------------------------------------------------------------


def _trivial(seg: _Segment) -> float:
    """``trivial_lower_bound`` on the batched path (no oracle requests: t1/tm
    are cached on first access)."""
    oracle = seg.oracle
    return max(float(oracle.tm.max()), oracle.sequential_sum(oracle.t1) / seg.m)


def _gen_phi(seg: _Segment, tau: float):
    """``_phi`` (bounds.py): average canonical load at ``tau`` or ``None``."""
    gammas = yield ("gamma", tau)
    if len(gammas) and gammas.max() > seg.m:
        return None
    ks = np.broadcast_to(np.asarray(gammas, dtype=np.float64), (seg.n,))
    times = yield ("eval", ks)
    return BatchedOracle.sequential_sum(ks * times) / seg.m


def _gen_allot(seg: _Segment, tau: float):
    """``_canonical_allotment`` (bounds.py) on the batched path."""
    gammas = yield ("gamma", tau)
    if len(gammas) and gammas.max() > seg.m:
        return None
    return Allotment.from_trusted_counts(dict(zip(seg.jobs, gammas.tolist())))


def _gen_estimator(seg: _Segment):
    """``ludwig_tiwari_estimator`` (oracle path, default tol/max_iter)."""
    tol = 1e-6
    m = seg.m
    oracle = seg.oracle
    lo = max(float(oracle.tm.max()), 1e-300)
    hi = max(oracle.sequential_sum(oracle.t1), lo)

    phi_lo = yield from _gen_phi(seg, lo)
    if phi_lo is not None and phi_lo <= lo:
        allot = yield from _gen_allot(seg, lo)
        assert allot is not None
        return EstimatorResult(omega=max(phi_lo, lo), allotment=allot)

    for _ in range(128):
        if hi <= lo * (1.0 + tol):
            break
        mid = math.sqrt(lo * hi)
        phi_mid = yield from _gen_phi(seg, mid)
        if phi_mid is None or phi_mid > mid:
            lo = mid
        else:
            hi = mid

    allot = yield from _gen_allot(seg, hi)
    assert allot is not None, "upper end of the bracket must always be feasible"
    # solo reads gamma_array(hi) again (a threshold-cache hit) and evaluates
    # works_at + times_at; the same times array serves both here.
    gammas = yield ("gamma", hi)
    ks = np.broadcast_to(np.asarray(gammas, dtype=np.float64), (seg.n,))
    times = yield ("eval", ks)
    omega = max(BatchedOracle.sequential_sum(ks * times) / m, float(times.max()))
    lower = max(_trivial(seg), lo)
    omega = max(omega / (1.0 + tol), lower)
    return EstimatorResult(omega=omega, allotment=allot, ratio=2.0 * (1.0 + 2.0 * tol))


def _gen_two_approx(seg: _Segment):
    """``two_approximation`` (vectorized path); returns (schedule, estimate)."""
    jobs = seg.jobs
    estimate = yield from _gen_estimator(seg)
    counts = estimate.allotment.counts
    ks = np.array([counts[j] for j in jobs], dtype=np.float64)
    times = yield ("eval", ks)
    order = [jobs[i] for i in np.argsort(-times, kind="stable").tolist()]
    allotted_times = dict(zip(jobs, times.tolist()))
    list_backend = seg.list_backend if seg.list_backend is not None else "event_queue"
    schedule = list_schedule(
        jobs,
        estimate.allotment,
        seg.m,
        order=order,
        backend=list_backend,
        allotted_times=allotted_times,
        oracle=seg.oracle,
    )
    schedule.metadata["algorithm"] = "two_approximation"
    schedule.metadata["omega"] = estimate.omega
    if seg.validate:
        assert_valid_schedule(schedule, jobs, oracle=seg.oracle)
    return schedule, estimate


def _gen_fptas_dual(seg: _Segment, d: float, inner: float):
    """``fptas_dual`` (vectorized, defer_build=True): a thunk or ``None``."""
    if d <= 0:
        return None
    threshold = (1.0 + inner) * d
    m = seg.m
    gammas = yield ("gamma", threshold)
    if len(gammas) and int(gammas.max()) > m:
        return None
    if sum(gammas.tolist()) > m:  # exact (Python int) total
        return None
    jobs = seg.jobs
    metadata = {"algorithm": "fptas_dual", "d": d, "eps": inner}

    def build() -> Schedule:
        n = len(gammas)
        offsets = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(gammas[:-1], out=offsets[1:])
        return schedule_from_arrays(
            jobs,
            m,
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.float64),
            offsets,
            gammas,
            metadata=metadata,
        )

    return build


def _gen_dual_search(seg: _Segment, inner: float):
    """``dual_binary_search`` with the FPTAS dual step; returns
    ``(DualSearchResult, EstimatorResult)`` so the caller reuses the bracket
    estimate for the certified lower bound."""
    tolerance = inner
    estimate = yield from _gen_estimator(seg)
    lower = max(estimate.omega, _trivial(seg))
    upper = max(estimate.upper_bound, lower * (1 + tolerance))
    lower = max(lower, 1e-300)
    upper = max(upper, lower)

    dual_calls = 0
    schedule = yield from _gen_fptas_dual(seg, upper, inner)
    dual_calls += 1
    widen = 0
    while schedule is None and widen < 64:
        upper *= 2.0
        schedule = yield from _gen_fptas_dual(seg, upper, inner)
        dual_calls += 1
        widen += 1
    if schedule is None:
        raise RuntimeError(
            "dual algorithm rejected every target makespan; cannot bracket the optimum"
        )
    best = schedule
    best_d = upper

    iterations = 0
    while upper > lower * (1.0 + tolerance) and iterations < 200:
        mid = math.sqrt(lower * upper)
        candidate = yield from _gen_fptas_dual(seg, mid, inner)
        dual_calls += 1
        iterations += 1
        if candidate is not None:
            best = candidate
            best_d = mid
            upper = mid
        else:
            lower = mid

    if callable(best):
        best = best()
    result = DualSearchResult(
        schedule=best,
        accepted_d=best_d,
        lower_bound=lower,
        iterations=iterations,
        dual_calls=dual_calls,
        gamma_probes=seg.oracle.gamma_probes,
    )
    return result, estimate


def _gen_fptas(seg: _Segment):
    """``fptas_schedule`` (vectorized); returns (schedule, estimate).  The
    eps / machine-threshold preconditions were checked at pack time."""
    inner = seg.eps / 3.0
    result, estimate = yield from _gen_dual_search(seg, inner)
    result.schedule.metadata["algorithm"] = "fptas"
    result.schedule.metadata["eps"] = seg.eps
    result.schedule.metadata["guarantee"] = 1.0 + seg.eps
    result.schedule.metadata["backend"] = "vectorized"
    if seg.validate and seg.jobs:
        assert_valid_schedule(result.schedule, seg.jobs, oracle=seg.oracle)
    return result.schedule, estimate


def _gen_solve(seg: _Segment):
    """``schedule_moldable`` for the batched algorithms; returns the solo
    :class:`SchedulingResult` bit for bit."""
    if seg.chosen == "two_approx":
        schedule, estimate = yield from _gen_two_approx(seg)
        guarantee: Optional[float] = 2.0
    else:  # fptas
        schedule, estimate = yield from _gen_fptas(seg)
        guarantee = 1.0 + seg.eps
    # solo computes ``makespan_lower_bound(jobs, m)`` with a *fresh scalar*
    # estimator; γ-arrays and therefore every phi value are exact regardless
    # of backend or cache state, so the scalar re-estimation reproduces
    # exactly the omega the batched bracket already computed — reuse it.
    # (Pinned by the mega differential mode and the megabatch property test.)
    lower = max(_trivial(seg), estimate.omega)
    schedule.metadata.setdefault("algorithm", seg.chosen)
    return SchedulingResult(
        schedule=schedule,
        algorithm=seg.chosen,
        eps=seg.eps,
        lower_bound=lower,
        guarantee=guarantee,
    )


def _drive(batch: MegaBatch, oracle: MegaOracle) -> List[SchedulingResult]:
    """Advance every segment's solve generator one request per round,
    batching each round's γ-requests into one lockstep search and its
    evaluation requests into one shared-bundle pass."""
    gens = {seg.slot: _gen_solve(seg) for seg in batch.segments}
    seg_of = {seg.slot: seg for seg in batch.segments}
    results: Dict[int, SchedulingResult] = {}
    replies: Dict[int, Any] = {}
    live = sorted(gens)
    while live:
        gamma_reqs: List[Tuple[int, float]] = []
        eval_reqs: List[Tuple[int, np.ndarray]] = []
        still_live = []
        for slot in live:
            try:
                kind, payload = gens[slot].send(replies.pop(slot, None))
            except StopIteration as stop:
                results[slot] = stop.value
                continue
            still_live.append(slot)
            if kind == "gamma":
                gamma_reqs.append((slot, payload))
            else:
                eval_reqs.append((slot, payload))
        if gamma_reqs:
            answers = oracle.gamma_round(
                [(seg_of[slot], t) for slot, t in gamma_reqs]
            )
            for (slot, _), ans in zip(gamma_reqs, answers):
                replies[slot] = ans
        if eval_reqs:
            answers = oracle.eval_round(
                [(seg_of[slot], ks) for slot, ks in eval_reqs]
            )
            for (slot, _), ans in zip(eval_reqs, answers):
                replies[slot] = ans
        live = still_live
    return [results[seg.slot] for seg in batch.segments]


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------


def _coerce_instance(item, eps, algorithm):
    """Accept ``(jobs, m)`` tuples or objects with ``jobs``/``m`` attributes
    (``eps`` / ``algorithm`` attributes override the call defaults when
    present and non-None, e.g. :class:`repro.serve.FleetInstance`)."""
    if isinstance(item, tuple):
        jobs, m = item
        return list(jobs), int(m), float(eps), algorithm
    i_eps = getattr(item, "eps", None)
    i_alg = getattr(item, "algorithm", None)
    return (
        list(item.jobs),
        int(item.m),
        float(eps if i_eps is None else i_eps),
        algorithm if i_alg is None else i_alg,
    )


def solve_mega(
    instances: Sequence[Any],
    eps: float = 0.1,
    *,
    algorithm: str = "auto",
    validate: bool = True,
    list_backend: Optional[str] = None,
    warm_start: bool = True,
    stats: Optional[dict] = None,
) -> List[SchedulingResult]:
    """Solve many independent instances, sharing every batched kernel call.

    Each element of ``instances`` is a ``(jobs, m)`` tuple or an object with
    ``jobs`` / ``m`` (and optionally ``eps`` / ``algorithm``) attributes.
    Returns one :class:`~repro.core.scheduler.SchedulingResult` per instance,
    in order, bit-identical to solo ``schedule_moldable`` calls.

    Instances whose resolved algorithm is batchable (``two_approx`` or
    ``fptas``, ``m`` within the vectorized boundary) are packed into one
    :class:`MegaBatch` and solved in lockstep; the rest fall back to solo
    solves.  Invalid parameters raise exactly the solo errors, before any
    work starts.

    ``stats``, when a dict, receives ``mega_size`` (packed instance count),
    ``gamma_rounds`` / ``eval_rounds`` (batched oracle rounds) and
    ``segments`` (each packed oracle's solo-equivalent probe counters).
    """
    normalized = []
    for item in instances:
        jobs, m, i_eps, i_alg = _coerce_instance(item, eps, algorithm)
        if m < 1:
            raise ValueError("m must be >= 1")
        if i_alg not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {i_alg!r}; choose one of {ALGORITHMS}")
        chosen = i_alg
        if jobs and i_alg == "auto":
            chosen = (
                "fptas" if m >= fptas_machine_threshold(len(jobs), i_eps) else "bounded"
            )
        mega = bool(jobs) and chosen in ("two_approx", "fptas") and m <= MAX_VECTORIZED_M
        if mega and chosen == "fptas":
            # solo fptas_schedule raises these before touching the oracle;
            # surface them at pack time with identical messages
            if not 0 < i_eps <= 1:
                raise ValueError("eps must lie in (0, 1]")
            if i_alg == "fptas" and m < fptas_machine_threshold(len(jobs), i_eps):
                raise ValueError(
                    f"the FPTAS requires m >= 8n/eps = "
                    f"{fptas_machine_threshold(len(jobs), i_eps):.1f}, got m={m}; "
                    "use ptas_schedule() for the general case"
                )
        normalized.append((jobs, m, i_eps, i_alg, chosen, mega))

    segments = []
    for slot, (jobs, m, i_eps, i_alg, chosen, mega) in enumerate(normalized):
        if mega:
            segments.append(
                _Segment(slot, jobs, m, i_eps, chosen, validate, list_backend)
            )

    mega_results: Dict[int, SchedulingResult] = {}
    if segments:
        batch = MegaBatch(segments, warm_start=warm_start)
        oracle = MegaOracle(batch)
        for seg, result in zip(batch.segments, _drive(batch, oracle)):
            mega_results[seg.slot] = result
        if stats is not None:
            stats["mega_size"] = len(segments)
            stats.update(oracle.stats)
            stats["segments"] = [dict(seg.oracle.stats) for seg in batch.segments]
    elif stats is not None:
        stats["mega_size"] = 0
        stats["gamma_rounds"] = 0
        stats["eval_rounds"] = 0
        stats["segments"] = []

    out: List[SchedulingResult] = []
    for slot, (jobs, m, i_eps, i_alg, chosen, mega) in enumerate(normalized):
        if mega:
            out.append(mega_results[slot])
        elif not jobs:
            # solo empty-instance path: algorithm is reported as given
            out.append(SchedulingResult(Schedule(m=m), i_alg, i_eps, 0.0, None))
        else:
            out.append(
                schedule_moldable(
                    jobs,
                    m,
                    i_eps,
                    algorithm=i_alg,
                    validate=validate,
                    list_backend=list_backend,
                )
            )
    return out
