"""Batched γ-allotments: all n binary searches in lockstep on arrays.

The algorithms of Jansen & Land evaluate the canonical processor count

    gamma_j(t) = min { k in [m] : t_j(k) <= t }

for every job at many thresholds ``t`` (the dual binary search probes
``O(log 1/eps)`` targets ``d``, and each dual step needs ``gamma_j(d)``,
``gamma_j(d/2)`` and ``gamma_j(3d/2)``).  The scalar path runs ``n`` separate
binary searches of ``log m`` Python-level oracle calls each.

:class:`BatchedOracle` instead advances *all* jobs' bisections together: one
vectorized oracle evaluation (via :class:`~repro.perf.arrays.JobArrayBundle`)
per bisection level, ``O(log m)`` array operations total.  Results are cached
per threshold, and — the γ-breakpoint cache — every new threshold initialises
its bisection brackets from the nearest previously evaluated thresholds:
``t' > t`` implies ``gamma_j(t') <= gamma_j(t)``, so the cached γ-array of a
neighbouring threshold is a valid per-job lower/upper bracket.  Across the
dual search's shrinking threshold interval this cuts the number of bisection
levels far below ``log m``.

γ-arrays use the sentinel ``m + 1`` for "infeasible even on all m machines"
(where the scalar :func:`repro.core.allotment.gamma` returns ``None``); the
sentinel keeps the arrays monotone in the threshold, which the bracket
narrowing relies on.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.job import MoldableJob
from .arrays import JobArrayBundle

__all__ = ["BatchedOracle"]


class BatchedOracle:
    """Vectorized γ/processing-time oracle over a fixed instance ``(jobs, m)``.

    The instance must not change while the oracle is alive: γ-arrays are
    cached per threshold and job indices are positional.
    """

    def __init__(self, jobs: Sequence[MoldableJob], m: int) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if m > (1 << 63) - 2:
            # γ-arrays store the sentinel m + 1 in int64; the compact input
            # encoding allows larger m, but those instances must use the
            # scalar path (resolve_backend falls back automatically).
            raise ValueError(
                f"m={m} exceeds the int64 range of the batched oracle; use the scalar backend"
            )
        self.jobs: List[MoldableJob] = list(jobs)
        self.m = int(m)
        self.n = len(self.jobs)
        self.bundle = JobArrayBundle(self.jobs)
        self._index: Dict[int, int] = {id(job): i for i, job in enumerate(self.jobs)}
        self._t1: Optional[np.ndarray] = None
        self._tm: Optional[np.ndarray] = None
        self._gamma_cache: Dict[float, np.ndarray] = {}
        self._sorted_thresholds: List[float] = []
        #: instrumentation: lockstep searches run, bisection levels spent
        #: (summed over the per-job-class group loops, so a mixed instance
        #: counts each class's levels separately), vectorized oracle values
        #: computed, threshold-cache hits.
        self.stats = {
            "gamma_batches": 0,
            "bisection_levels": 0,
            "oracle_evals": 0,
            "threshold_cache_hits": 0,
        }

    # ------------------------------------------------------------- raw times
    @property
    def t1(self) -> np.ndarray:
        """``t_j(1)`` for all jobs (evaluated once)."""
        if self._t1 is None:
            self._t1 = self.bundle.eval_all(1.0)
            self._t1.setflags(write=False)
        return self._t1

    @property
    def tm(self) -> np.ndarray:
        """``t_j(m)`` for all jobs (evaluated once)."""
        if self._tm is None:
            self._tm = self.bundle.eval_all(float(self.m))
            self._tm.setflags(write=False)
        return self._tm

    def times_at(self, ks) -> np.ndarray:
        """``t_j(ks_j)`` for all jobs at per-job processor counts."""
        return self.bundle.eval_all(ks)

    def works_at(self, ks) -> np.ndarray:
        """``w_j(ks_j) = ks_j * t_j(ks_j)`` for all jobs."""
        ks = np.broadcast_to(np.asarray(ks, dtype=np.float64), (self.n,))
        return ks * self.bundle.eval_all(ks)

    def index_of(self, job: MoldableJob) -> int:
        """Positional index of ``job`` in this oracle's job list."""
        return self._index[id(job)]

    # ------------------------------------------------------------ gamma batch
    def gamma_array(self, threshold: float) -> np.ndarray:
        """``gamma_j(threshold)`` for all jobs as a read-only int64 array.

        Entries equal to ``m + 1`` mean the job cannot meet the threshold even
        on all ``m`` machines (scalar ``gamma`` returns ``None`` there).
        """
        threshold = float(threshold)
        cached = self._gamma_cache.get(threshold)
        if cached is not None:
            self.stats["threshold_cache_hits"] += 1
            return cached

        m = self.m
        n = self.n
        out = np.full(n, m + 1, dtype=np.int64)
        if threshold > 0.0 and n > 0:
            self.stats["gamma_batches"] += 1
            feasible = self.tm <= threshold
            one_enough = self.t1 <= threshold
            out[feasible & one_enough] = 1
            active = feasible & ~one_enough
            if active.any():
                idx = np.nonzero(active)[0]
                # bisection invariant: t(lo) > threshold, t(hi) <= threshold
                lo = np.ones(len(idx), dtype=np.int64)
                hi = np.full(len(idx), m, dtype=np.int64)
                # γ-breakpoint cache: brackets from neighbouring thresholds.
                pos = bisect_right(self._sorted_thresholds, threshold)
                if pos < len(self._sorted_thresholds):
                    above = self._gamma_cache[self._sorted_thresholds[pos]][idx]
                    # t' > t  =>  gamma(t') <= gamma(t); t(gamma(t') - 1) > t' > t
                    lo = np.maximum(lo, np.minimum(above, np.int64(m + 1)) - 1)
                if pos > 0:
                    below = self._gamma_cache[self._sorted_thresholds[pos - 1]][idx]
                    # t' < t  =>  gamma(t') >= gamma(t); t(gamma(t')) <= t' < t
                    hi = np.minimum(hi, below)
                # Dispatch the job-class groups once, then run each group's
                # bisection in a tight loop over its own kernel — every job's
                # (lo, hi, mid) trajectory is independent, so the per-job
                # results (and the total oracle_evals count) are identical to
                # a combined lockstep search, without re-partitioning the
                # active set on every level.
                gof = self.bundle.group_of[idx]
                groups = self.bundle.groups
                for gid in np.unique(gof):
                    gsel = np.nonzero(gof == gid)[0]
                    gidx = idx[gsel]
                    glo = lo[gsel]
                    ghi = hi[gsel]
                    eval_kernel = groups[gid].eval
                    gpos = self.bundle.pos_in_group[gidx]
                    while True:
                        open_mask = ghi - glo > 1
                        if not open_mask.any():
                            break
                        self.stats["bisection_levels"] += 1
                        sub = np.nonzero(open_mask)[0]
                        mid = (glo[sub] + ghi[sub]) // 2
                        self.stats["oracle_evals"] += len(sub)
                        # int64 counts upcast to float64 inside the kernels
                        # exactly like an explicit astype would
                        t_mid = eval_kernel(gpos[sub], mid)
                        le = t_mid <= threshold
                        ghi[sub[le]] = mid[le]
                        ge = ~le
                        glo[sub[ge]] = mid[ge]
                    out[gidx] = ghi
        out.setflags(write=False)
        self._gamma_cache[threshold] = out
        insort(self._sorted_thresholds, threshold)
        return out

    def gamma(self, job: MoldableJob, threshold: float, m: Optional[int] = None) -> Optional[int]:
        """Scalar drop-in for :func:`repro.core.allotment.gamma`.

        Answered from the per-threshold γ-array cache: the first call for a
        new threshold computes the whole array in one lockstep search, every
        further call is an O(1) lookup.
        """
        if m is not None and int(m) != self.m:
            raise ValueError(f"oracle was built for m={self.m}, got query with m={m}")
        g = int(self.gamma_array(threshold)[self._index[id(job)]])
        return None if g > self.m else g

    # ------------------------------------------------------------ aggregates
    def canonical_loads(self, threshold: float) -> Optional[np.ndarray]:
        """Per-job works ``w_j(gamma_j(threshold))`` or ``None`` if any job
        cannot meet the threshold (mirrors ``canonical_allotment``)."""
        gammas = self.gamma_array(threshold)
        if len(gammas) and gammas.max() > self.m:
            return None
        return self.works_at(gammas)

    @staticmethod
    def sequential_sum(values: np.ndarray) -> float:
        """Left-to-right float sum, matching the scalar ``sum()`` over jobs
        bit for bit (``np.sum`` pairwise summation would not)."""
        return sum(values.tolist())
