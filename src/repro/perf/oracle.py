"""Batched γ-allotments: all n binary searches in lockstep on arrays.

The algorithms of Jansen & Land evaluate the canonical processor count

    gamma_j(t) = min { k in [m] : t_j(k) <= t }

for every job at many thresholds ``t`` (the dual binary search probes
``O(log 1/eps)`` targets ``d``, and each dual step needs ``gamma_j(d)``,
``gamma_j(d/2)`` and ``gamma_j(3d/2)``).  The scalar path runs ``n`` separate
binary searches of ``log m`` Python-level oracle calls each.

:class:`BatchedOracle` instead advances *all* jobs' bisections together: one
vectorized oracle evaluation (via :class:`~repro.perf.arrays.JobArrayBundle`)
per bisection level, ``O(log m)`` array operations total.  Results are cached
per threshold, and — the γ *warm start* — every new threshold initialises its
lockstep search from the previously evaluated thresholds in two ways:

* **brackets**: ``t' > t`` implies ``gamma_j(t') <= gamma_j(t)``, so the
  cached γ-arrays of the two nearest neighbouring thresholds are valid
  per-job lower/upper brackets;
* **monotone interpolation**: across the sorted dual-search thresholds the
  per-job γ curve is monotone, so interpolating the two neighbouring
  γ-arrays in log-threshold space predicts the answer directly.  The first
  two bisection levels probe the prediction and its adjacent boundary
  instead of the bracket midpoint — when the prediction is exact (the common
  case for the dual search's geometrically converging probes) the bracket
  closes in one or two evaluations regardless of its width.

``warm_start=False`` disables both (every threshold runs the full cold
``log m`` lockstep bisection); probe counts are instrumented either way in
``stats`` (``oracle_evals`` is the total number of per-job kernel probes,
``warm_probes`` the subset spent on warm-start guesses) so regression tests
can pin the savings.

γ-arrays use the sentinel ``m + 1`` for "infeasible even on all m machines"
(where the scalar :func:`repro.core.allotment.gamma` returns ``None``); the
sentinel keeps the arrays monotone in the threshold, which the bracket
narrowing relies on.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.capacity import MAX_COLUMNAR_M
from ..core.job import MoldableJob
from .arrays import JobArrayBundle

__all__ = ["BatchedOracle", "lockstep_gamma_round"]


class BatchedOracle:
    """Vectorized γ/processing-time oracle over a fixed instance ``(jobs, m)``.

    The instance must not change while the oracle is alive: γ-arrays are
    cached per threshold and job indices are positional.
    """

    def __init__(
        self,
        jobs: Sequence[MoldableJob],
        m: int,
        *,
        warm_start: bool = True,
        bundle=None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if m > MAX_COLUMNAR_M:
            # γ-arrays store the sentinel m + 1 in int64, and tm / works_at /
            # times_at funnel counts through float64 — the same int64 contract
            # boundary as repro.core.capacity.capacity_tier (2^62).  The
            # compact input encoding allows larger m, but those instances must
            # use the scalar path (resolve_backend falls back automatically).
            raise ValueError(
                f"m={m} exceeds the int64 range of the batched oracle; use the scalar backend"
            )
        self.jobs: List[MoldableJob] = list(jobs)
        self.m = int(m)
        self.n = len(self.jobs)
        self.warm_start = bool(warm_start)
        #: ``bundle`` is internal plumbing for the mega-batch layer: a
        #: segment view of a shared bundle may be injected so evaluations of
        #: many oracles coalesce; defaults to a private bundle over ``jobs``.
        self.bundle = bundle if bundle is not None else JobArrayBundle(self.jobs)
        self._index: Dict[int, int] = {id(job): i for i, job in enumerate(self.jobs)}
        self._t1: Optional[np.ndarray] = None
        self._tm: Optional[np.ndarray] = None
        self._gamma_cache: Dict[float, np.ndarray] = {}
        self._sorted_thresholds: List[float] = []
        #: instrumentation: lockstep searches run, bisection levels spent
        #: (summed over the per-job-class group loops, so a mixed instance
        #: counts each class's levels separately), vectorized oracle values
        #: computed (= γ-probes), warm-start guess probes among them, and
        #: threshold-cache hits.
        self.stats = {
            "gamma_batches": 0,
            "bisection_levels": 0,
            "oracle_evals": 0,
            "warm_probes": 0,
            "threshold_cache_hits": 0,
        }

    @property
    def gamma_probes(self) -> int:
        """Total per-job oracle probes spent by the γ-searches so far (each
        probe is one ``t_j(k)`` kernel evaluation inside a lockstep search)."""
        return self.stats["oracle_evals"]

    # ------------------------------------------------------------- raw times
    @property
    def t1(self) -> np.ndarray:
        """``t_j(1)`` for all jobs (evaluated once)."""
        if self._t1 is None:
            self._t1 = self.bundle.eval_all(1.0)
            self._t1.setflags(write=False)
        return self._t1

    @property
    def tm(self) -> np.ndarray:
        """``t_j(m)`` for all jobs (evaluated once)."""
        if self._tm is None:
            self._tm = self.bundle.eval_all(float(self.m))
            self._tm.setflags(write=False)
        return self._tm

    def times_at(self, ks) -> np.ndarray:
        """``t_j(ks_j)`` for all jobs at per-job processor counts."""
        return self.bundle.eval_all(ks)

    def times_for(self, jobs: Sequence[MoldableJob], ks) -> np.ndarray:
        """``t_j(ks_i)`` for an arbitrary job subset/permutation ``jobs``.

        One batched kernel call per job class present — the columnar
        list-scheduling backends use this to resolve durations for a
        priority-ordered job sequence without per-job Python calls."""
        index = self._index
        idx = np.fromiter(
            (index[id(job)] for job in jobs), dtype=np.int64, count=len(jobs)
        )
        return self.bundle.eval_at(idx, np.asarray(ks, dtype=np.float64))

    def works_at(self, ks) -> np.ndarray:
        """``w_j(ks_j) = ks_j * t_j(ks_j)`` for all jobs."""
        ks = np.broadcast_to(np.asarray(ks, dtype=np.float64), (self.n,))
        return ks * self.bundle.eval_all(ks)

    def index_of(self, job: MoldableJob) -> int:
        """Positional index of ``job`` in this oracle's job list."""
        return self._index[id(job)]

    # ---------------------------------------------------------- cache priming
    def prime_from(self, other: "BatchedOracle") -> int:
        """Transfer ``other``'s cached γ-thresholds to this oracle.

        The recovery loop re-plans a shrinking pending set on a changing
        machine count; each re-plan builds a fresh oracle (γ-arrays are
        positional over a fixed ``(jobs, m)``), which would discard the
        previous epoch's γ-searches.  Priming transfers them *exactly*:

        * rows are remapped by job identity (a no-op returning 0 if any of
          this oracle's jobs is unknown to ``other``);
        * for ``m_new <= m_old``, ``gamma(t)`` on fewer machines is the old
          value when it still fits and the sentinel ``m_new + 1`` otherwise —
          an exact rewrite, every threshold transfers;
        * for ``m_new > m_old``, old non-sentinel values are still exact
          (``gamma <= m_old < m_new`` is unchanged by adding machines), but a
          sentinel row is unknown on the larger machine set, so thresholds
          containing one are skipped.

        Transferred thresholds join ``_sorted_thresholds`` and therefore feed
        the bracket/interpolation warm start of every subsequent
        :meth:`gamma_array` call.  Returns the number of thresholds
        transferred.
        """
        if self.n == 0:
            return 0
        try:
            rows = np.fromiter(
                (other._index[id(job)] for job in self.jobs),
                dtype=np.int64,
                count=self.n,
            )
        except KeyError:
            return 0
        transferred = 0
        for threshold, arr in other._gamma_cache.items():
            if threshold in self._gamma_cache:
                continue
            vals = arr[rows]  # fancy indexing copies
            if self.m < other.m:
                np.minimum(vals, np.int64(self.m + 1), out=vals)
            elif self.m > other.m and (vals > other.m).any():
                continue
            vals.setflags(write=False)
            self._gamma_cache[threshold] = vals
            insort(self._sorted_thresholds, threshold)
            transferred += 1
        return transferred

    # ------------------------------------------------------------ gamma batch
    def gamma_array(self, threshold: float) -> np.ndarray:
        """``gamma_j(threshold)`` for all jobs as a read-only int64 array.

        Entries equal to ``m + 1`` mean the job cannot meet the threshold even
        on all ``m`` machines (scalar ``gamma`` returns ``None`` there).

        This is the N=1 case of :func:`lockstep_gamma_round` — the mega-batch
        layer runs the same search over many instances' thresholds at once.
        """
        return lockstep_gamma_round([(self, threshold)])[0]

    def gamma(self, job: MoldableJob, threshold: float, m: Optional[int] = None) -> Optional[int]:
        """Scalar drop-in for :func:`repro.core.allotment.gamma`.

        Answered from the per-threshold γ-array cache: the first call for a
        new threshold computes the whole array in one lockstep search, every
        further call is an O(1) lookup.
        """
        if m is not None and int(m) != self.m:
            raise ValueError(f"oracle was built for m={self.m}, got query with m={m}")
        g = int(self.gamma_array(threshold)[self._index[id(job)]])
        return None if g > self.m else g

    # ------------------------------------------------------------ aggregates
    def canonical_loads(self, threshold: float) -> Optional[np.ndarray]:
        """Per-job works ``w_j(gamma_j(threshold))`` or ``None`` if any job
        cannot meet the threshold (mirrors ``canonical_allotment``)."""
        gammas = self.gamma_array(threshold)
        if len(gammas) and gammas.max() > self.m:
            return None
        return self.works_at(gammas)

    @staticmethod
    def sequential_sum(values: np.ndarray) -> float:
        """Left-to-right float sum, matching the scalar ``sum()`` over jobs
        bit for bit (``np.sum`` pairwise summation would not)."""
        return sum(values.tolist())


# ---------------------------------------------------------------------------
# lockstep γ-search core — shared by the solo oracle (N=1) and the mega batch
# ---------------------------------------------------------------------------


class _LiveSearch:
    """One oracle's in-flight γ-search inside a lockstep round."""

    __slots__ = ("slot", "oracle", "threshold", "out", "idx", "lo", "hi", "pred")

    def __init__(self, slot, oracle, threshold, out, idx, lo, hi, pred):
        self.slot = slot
        self.oracle = oracle
        self.threshold = threshold
        self.out = out
        self.idx = idx
        self.lo = lo
        self.hi = hi
        self.pred = pred


def _finish(oracle: BatchedOracle, threshold: float, out: np.ndarray) -> None:
    out.setflags(write=False)
    if threshold not in oracle._gamma_cache:
        # a round may carry the same (oracle, threshold) twice; only the
        # first result enters the sorted-threshold warm-start index
        insort(oracle._sorted_thresholds, threshold)
    oracle._gamma_cache[threshold] = out


def lockstep_gamma_round(
    requests: Sequence[Tuple[BatchedOracle, float]],
) -> List[np.ndarray]:
    """Run one γ-array evaluation per ``(oracle, threshold)`` request, all in
    a single lockstep bisection.

    Every request behaves exactly as its oracle's solo ``gamma_array`` call
    would — same cache lookups, same warm-start brackets/predictions, same
    probe trajectory, same ``stats`` accounting — because each job's
    ``(lo, hi, mid)`` trajectory is independent of every other job's.  The
    mega-batch layer passes many segments' requests whose oracles share one
    underlying :class:`~repro.perf.arrays.JobArrayBundle`, so every bisection
    level costs one kernel evaluation per job class across *all* instances.
    """
    results: List[Optional[np.ndarray]] = [None] * len(requests)
    live: List[_LiveSearch] = []
    for slot, (oracle, threshold) in enumerate(requests):
        threshold = float(threshold)
        cached = oracle._gamma_cache.get(threshold)
        if cached is not None:
            oracle.stats["threshold_cache_hits"] += 1
            results[slot] = cached
            continue
        m = oracle.m
        n = oracle.n
        out = np.full(n, m + 1, dtype=np.int64)
        if threshold > 0.0 and n > 0:
            oracle.stats["gamma_batches"] += 1
            feasible = oracle.tm <= threshold
            one_enough = oracle.t1 <= threshold
            out[feasible & one_enough] = 1
            active = feasible & ~one_enough
            if active.any():
                idx = np.nonzero(active)[0]
                # bisection invariant: t(lo) > threshold, t(hi) <= threshold
                lo = np.ones(len(idx), dtype=np.int64)
                hi = np.full(len(idx), m, dtype=np.int64)
                #: per-job warm-start prediction of γ (None = cold search)
                pred: Optional[np.ndarray] = None
                if oracle.warm_start:
                    # γ warm start, part 1 — brackets from the two nearest
                    # neighbouring thresholds.
                    pos = bisect_right(oracle._sorted_thresholds, threshold)
                    above = below = None
                    if pos < len(oracle._sorted_thresholds):
                        above = oracle._gamma_cache[oracle._sorted_thresholds[pos]][idx]
                        # t' > t  =>  gamma(t') <= gamma(t); t(gamma(t') - 1) > t' > t
                        above = np.minimum(above, np.int64(m + 1))
                        lo = np.maximum(lo, above - 1)
                    if pos > 0:
                        below = oracle._gamma_cache[oracle._sorted_thresholds[pos - 1]][idx]
                        # t' < t  =>  gamma(t') >= gamma(t); t(gamma(t')) <= t' < t
                        hi = np.minimum(hi, below)
                    # γ warm start, part 2 — monotone interpolation across the
                    # sorted thresholds: with both neighbours present,
                    # interpolate their γ-arrays at the new threshold's
                    # position in log space.  The prediction only steers
                    # *which* count the first probes evaluate — correctness
                    # rests on the bracket invariant alone.
                    t_below = oracle._sorted_thresholds[pos - 1] if pos > 0 else 0.0
                    if above is not None and below is not None and t_below > 0.0:
                        t_above = oracle._sorted_thresholds[pos]
                        span = np.log(t_above) - np.log(t_below)
                        frac = (np.log(threshold) - np.log(t_below)) / span if span > 0 else 0.5
                        # interpolate log γ against log t: exact for power-law
                        # speedups (log γ is linear in log t there) and the
                        # right curvature for the other monotone families —
                        # linear interpolation of the raw γ values would
                        # systematically overshoot (arithmetic vs geometric
                        # mean) on the dual search's sqrt-midpoint probes.
                        lg_b = np.log(below.astype(np.float64))
                        lg_a = np.log(above.astype(np.float64))
                        pred = np.rint(np.exp(lg_b + frac * (lg_a - lg_b))).astype(np.int64)
                    # a single neighbour narrows the bracket but carries no
                    # positional information about the new threshold between
                    # the remaining [1, m] mass — predicting its γ unchanged
                    # degrades to a linear probe there, so no prediction.
                live.append(_LiveSearch(slot, oracle, threshold, out, idx, lo, hi, pred))
                continue
        _finish(oracle, threshold, out)
        results[slot] = out
    if live:
        _bisect_lockstep(live)
        for search in live:
            _finish(search.oracle, search.threshold, search.out)
            results[search.slot] = search.out
    return results  # type: ignore[return-value]


def _bisect_lockstep(live: List[_LiveSearch]) -> None:
    """Advance every live search to completion, one kernel evaluation per
    (job-class group, bisection level) across *all* searches at once.

    Each job's trajectory is independent, so grouping jobs from many oracles
    into one kernel call changes neither the probed counts nor the results;
    per-oracle ``stats`` stay exact by attributing each probe back to its
    owner (``np.bincount`` over owner ids, or a direct bump when N=1).
    """
    groups = live[0].oracle.bundle.groups
    for search in live:
        # lockstep across oracles requires one shared kernel table: the mega
        # bundle's segment views all alias the parent's group list
        assert search.oracle.bundle.groups is groups, (
            "lockstep round requires all oracles to share one bundle"
        )
    one = len(live) == 1

    own_all = np.concatenate(
        [np.full(len(s.idx), i, dtype=np.int64) for i, s in enumerate(live)]
    )
    gof_all = np.concatenate([s.oracle.bundle.group_of[s.idx] for s in live])
    pos_all = np.concatenate([s.oracle.bundle.pos_in_group[s.idx] for s in live])
    outidx_all = np.concatenate([s.idx for s in live])
    lo_all = np.concatenate([s.lo for s in live])
    hi_all = np.concatenate([s.hi for s in live])
    thr_all = np.concatenate(
        [np.full(len(s.idx), s.threshold, dtype=np.float64) for s in live]
    )
    pred_all = np.concatenate(
        [
            s.pred if s.pred is not None else np.zeros(len(s.idx), dtype=np.int64)
            for s in live
        ]
    )
    has_all = np.concatenate(
        [np.full(len(s.idx), s.pred is not None, dtype=bool) for s in live]
    )

    def bump(key: str, owners: np.ndarray) -> None:
        if one:
            live[0].oracle.stats[key] += len(owners)
        elif len(owners):
            for i, c in enumerate(np.bincount(owners, minlength=len(live)).tolist()):
                if c:
                    live[i].oracle.stats[key] += c

    # Dispatch the job-class groups once, then run each group's bisection in
    # a tight loop over its own kernel — every job's (lo, hi, mid) trajectory
    # is independent, so the per-job results are identical to a combined
    # lockstep search, without re-partitioning the active set on every level.
    for gid in np.unique(gof_all):
        gsel = np.nonzero(gof_all == gid)[0]
        glo = lo_all[gsel]
        ghi = hi_all[gsel]
        gpos = pos_all[gsel]
        gthr = thr_all[gsel]
        gown = own_all[gsel]
        goutidx = outidx_all[gsel]
        gpred = pred_all[gsel]
        ghas = has_all[gsel]
        any_pred = bool(ghas.any())
        last_le: Optional[np.ndarray] = None
        eval_kernel = groups[gid].eval
        level = 0
        while True:
            open_mask = ghi - glo > 1
            if not open_mask.any():
                break
            sub = np.nonzero(open_mask)[0]
            # a level is counted once per oracle that still has open jobs in
            # this group — exactly what each solo per-group loop would count
            if one:
                live[0].oracle.stats["bisection_levels"] += 1
            else:
                for i in np.unique(gown[sub]).tolist():
                    live[i].oracle.stats["bisection_levels"] += 1
            mid = (glo[sub] + ghi[sub]) // 2
            if any_pred and level == 0:
                # probe the interpolated prediction itself — but
                # only where it lies inside (or on the edge of)
                # the bracket; a prediction further out is stale
                # and clipping it would degenerate into a linear
                # probe at the bracket edge, which loses to the
                # midpoint.  pred == hi probes hi-1 (the "γ
                # unchanged from the neighbour" confirmation),
                # pred == lo symmetrically probes lo+1.
                guided = ghas[sub] & (gpred[sub] >= glo[sub]) & (gpred[sub] <= ghi[sub])
                mid = np.where(
                    guided, np.clip(gpred[sub], glo[sub] + 1, ghi[sub] - 1), mid
                )
                bump("warm_probes", gown[sub][guided])
            elif any_pred and level == 1 and last_le is not None:
                # confirm-the-prediction probe: when t(pred) <=
                # threshold the answer is likely pred itself, so
                # testing hi-1 (== pred-1) closes the bracket in
                # one more evaluation.  When the first probe went
                # the other way the prediction undershot and the
                # remaining bracket is genuinely uncertain —
                # midpoint bisection resumes immediately.
                went_le = last_le[sub]
                guess = ghi[sub] - 1
                near = went_le & ghas[sub] & (np.abs(guess - gpred[sub]) <= 1)
                mid = np.where(near, np.clip(guess, glo[sub] + 1, ghi[sub] - 1), mid)
                bump("warm_probes", gown[sub][near])
            bump("oracle_evals", gown[sub])
            # int64 counts upcast to float64 inside the kernels
            # exactly like an explicit astype would
            t_mid = eval_kernel(gpos[sub], mid)
            le = t_mid <= gthr[sub]
            ghi[sub[le]] = mid[le]
            ge = ~le
            glo[sub[ge]] = mid[ge]
            if any_pred and level == 0:
                last_le = np.zeros(len(glo), dtype=bool)
                last_le[sub] = le
            level += 1
        if one:
            live[0].out[goutidx] = ghi
        else:
            for i in np.unique(gown).tolist():
                mask = gown == i
                live[i].out[goutidx[mask]] = ghi[mask]
