"""Vectorized oracle layer (the perf subsystem).

This package makes *batched* evaluation the fast path of the library:

* :mod:`repro.perf.arrays` — :class:`JobArrayBundle` keeps per-job model
  parameters in flat NumPy arrays grouped by job class (the SimSo idiom of
  per-entity state in arrays rather than object graphs), so the processing
  time ``t_j(k_j)`` of *many* jobs at *per-job* processor counts is one
  vectorized pass per job class.
* :mod:`repro.perf.oracle` — :class:`BatchedOracle` runs all ``n``
  γ-binary-searches in lockstep (``O(log m)`` array operations instead of
  ``n·log m`` Python calls) and caches the γ-arrays per threshold; successive
  thresholds of a dual search reuse earlier results as bisection brackets
  (the γ-breakpoint cache).
* :mod:`repro.perf.schedule_builder` — :class:`ArraySchedule` /
  :func:`schedule_from_arrays` assemble a :class:`~repro.core.schedule.Schedule`
  from flat columns (job index, start, span first/count) in one batched pass
  with vectorized span normalization, so the vectorized drivers never leave
  array-land until the final object; :class:`ScheduleColumns` is the read-side
  view consumed by the vectorized validator and simulator sweeps.
* :mod:`repro.perf.bench` — the scalar-vs-vectorized regression harness
  behind ``benchmarks/bench_perf_suite.py`` and ``BENCH_perf.json``.

All vectorized paths are bit-for-bit compatible with the scalar reference
implementations; the algorithm drivers select between them via their
``backend="vectorized" | "scalar"`` flag.
"""

from .arrays import JobArrayBundle
from .megabatch import MegaBatch, MegaOracle, solve_mega
from .oracle import BatchedOracle, lockstep_gamma_round
from .schedule_builder import ArraySchedule, ScheduleColumns, schedule_from_arrays

__all__ = [
    "JobArrayBundle",
    "BatchedOracle",
    "lockstep_gamma_round",
    "MegaBatch",
    "MegaOracle",
    "solve_mega",
    "ArraySchedule",
    "ScheduleColumns",
    "schedule_from_arrays",
]
