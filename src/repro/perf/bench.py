"""Scalar-vs-vectorized performance regression harness.

Times every algorithm driver on the Table-1 instance families (the
``random_mixed_instance`` sweeps of the paper's running-time study) under both
backends and writes the results to ``BENCH_perf.json``:

* per row: wall-clock seconds for ``backend="scalar"`` and
  ``backend="vectorized"``, the speedup, and whether the two backends produced
  *identical* makespans (they must — the vectorized layer is bit-compatible);
* aggregates: per-algorithm speedups and the geometric-mean speedup over the
  `(3/2+eps)` Table-1 algorithms on the ``n >= 1000`` instances (the headline
  number the acceptance gate checks).

``--smoke`` runs a small fixed configuration suitable for CI and can compare
against a checked-in baseline: the gate fails when an algorithm's *speedup*
drops below ``baseline / regression_factor`` (speedups, unlike absolute
seconds, transfer across machines).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.bounded_algorithm import bounded_schedule
from ..core.compressible_algorithm import compressible_schedule
from ..core.fptas import fptas_schedule
from ..core.mrt import mrt_schedule
from ..core.two_approx import two_approximation
from ..knapsack.compressible import _geom_cached
from ..workloads.generators import random_mixed_instance

__all__ = ["BenchRow", "BenchReport", "run_suite", "main"]

#: Algorithms whose n>=1000 speedups form the headline geometric mean (the
#: paper's Table 1 covers the (3/2+eps) dual algorithms; MRT is its baseline).
TABLE1_ALGORITHMS = ("mrt", "compressible", "bounded_heap", "bounded_bucket")

SCHEDULE_EPS = 0.1
FPTAS_EPS = 0.5


@dataclass
class BenchRow:
    algorithm: str
    family: str
    n: int
    m: int
    eps: float
    scalar_seconds: float
    vectorized_seconds: float
    speedup: float
    scalar_makespan: float
    vectorized_makespan: float
    makespans_identical: bool


@dataclass
class BenchReport:
    mode: str
    seed: int
    python: str = field(default_factory=platform.python_version)
    platform: str = field(default_factory=platform.platform)
    rows: List[BenchRow] = field(default_factory=list)
    aggregates: Dict[str, float] = field(default_factory=dict)
    identical_makespans: bool = True

    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True)


def _runner_for(algorithm: str) -> Callable:
    if algorithm == "mrt":
        return lambda jobs, m, backend: mrt_schedule(jobs, m, SCHEDULE_EPS, backend=backend)
    if algorithm == "compressible":
        return lambda jobs, m, backend: compressible_schedule(jobs, m, SCHEDULE_EPS, backend=backend)
    if algorithm == "bounded_heap":
        return lambda jobs, m, backend: bounded_schedule(
            jobs, m, SCHEDULE_EPS, transform="heap", backend=backend
        )
    if algorithm == "bounded_bucket":
        return lambda jobs, m, backend: bounded_schedule(
            jobs, m, SCHEDULE_EPS, transform="bucket", backend=backend
        )
    if algorithm == "fptas":
        return lambda jobs, m, backend: fptas_schedule(jobs, m, FPTAS_EPS, backend=backend)
    if algorithm == "two_approx":
        return lambda jobs, m, backend: two_approximation(jobs, m, backend=backend)
    raise KeyError(algorithm)


def _eps_for(algorithm: str) -> float:
    return FPTAS_EPS if algorithm == "fptas" else SCHEDULE_EPS


def _timed(fn: Callable[[], object], repeat: int, jobs) -> tuple[float, object]:
    best = math.inf
    result = None
    for _ in range(max(1, repeat)):
        # Clear every cross-run memo so neither backend benefits from a
        # previous (possibly other-backend) run of the same instance: the
        # geometric-grid cache and the per-job processing-time memos.
        _geom_cached.cache_clear()
        for job in jobs:
            job._cache.clear()
            job._cache_evictions = 0
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _configs(mode: str) -> List[dict]:
    """Instance configurations per mode.

    The full suite keeps ``m = 8n < 16n`` for the knapsack-based algorithms so
    their shelf-selection machinery is actually exercised, and ``m >= 8n/eps``
    for the FPTAS rows (its applicability regime).
    """
    if mode == "smoke":
        return [
            dict(algorithm=alg, family="mixed", n=120, m=960)
            for alg in TABLE1_ALGORITHMS
        ] + [dict(algorithm="fptas", family="mixed", n=60, m=1024)]
    configs = [
        dict(algorithm=alg, family="mixed", n=n, m=8 * n)
        for alg in TABLE1_ALGORITHMS
        for n in (1000, 2000)
    ]
    configs += [
        dict(algorithm="fptas", family="mixed", n=n, m=max(1 << 21, int(8 * n / FPTAS_EPS) + 1))
        for n in (1000, 2000)
    ]
    configs += [dict(algorithm="two_approx", family="mixed", n=2000, m=16000)]
    return configs


def run_suite(mode: str = "full", *, seed: int = 7, repeat: int = 1, verbose: bool = True) -> BenchReport:
    """Run the scalar-vs-vectorized suite and return the report."""
    if mode not in ("full", "smoke"):
        raise ValueError(f"unknown mode {mode!r}")
    report = BenchReport(mode=mode, seed=seed)
    for config in _configs(mode):
        algorithm = config["algorithm"]
        n, m = config["n"], config["m"]
        instance = random_mixed_instance(n, m, seed=seed)
        runner = _runner_for(algorithm)
        scalar_seconds, scalar_result = _timed(
            lambda: runner(instance.jobs, m, "scalar"), repeat, instance.jobs
        )
        vec_seconds, vec_result = _timed(
            lambda: runner(instance.jobs, m, "vectorized"), repeat, instance.jobs
        )
        row = BenchRow(
            algorithm=algorithm,
            family=config["family"],
            n=n,
            m=m,
            eps=_eps_for(algorithm),
            scalar_seconds=scalar_seconds,
            vectorized_seconds=vec_seconds,
            speedup=scalar_seconds / vec_seconds if vec_seconds > 0 else math.inf,
            scalar_makespan=scalar_result.makespan,
            vectorized_makespan=vec_result.makespan,
            makespans_identical=scalar_result.makespan == vec_result.makespan,
        )
        report.rows.append(row)
        report.identical_makespans &= row.makespans_identical
        if verbose:
            print(
                f"  {algorithm:15s} n={n:<5d} m={m:<8d} scalar {scalar_seconds:7.3f}s  "
                f"vectorized {vec_seconds:7.3f}s  speedup {row.speedup:5.1f}x  "
                f"makespans {'identical' if row.makespans_identical else 'DIFFER'}"
            )
    report.aggregates = _aggregate(report.rows)
    return report


def _aggregate(rows: Sequence[BenchRow]) -> Dict[str, float]:
    aggregates: Dict[str, float] = {}
    by_algorithm: Dict[str, List[float]] = {}
    for row in rows:
        by_algorithm.setdefault(row.algorithm, []).append(row.speedup)
    for algorithm, speedups in by_algorithm.items():
        aggregates[f"speedup_{algorithm}"] = _geomean(speedups)
    headline = [
        row.speedup
        for row in rows
        if row.algorithm in TABLE1_ALGORITHMS and row.n >= 1000
    ]
    if headline:
        aggregates["table1_speedup_geomean_n1000"] = _geomean(headline)
        aggregates["table1_speedup_min_n1000"] = min(headline)
    aggregates["speedup_geomean_all"] = _geomean([row.speedup for row in rows])
    return aggregates


def _geomean(values: Sequence[float]) -> float:
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return float("nan")
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def check_regression(
    report: BenchReport,
    baseline_path: str,
    *,
    regression_factor: float = 2.0,
) -> List[str]:
    """Compare per-algorithm speedups against a baseline report.

    Returns a list of human-readable failures (empty = gate passes).  Speedup
    ratios are used rather than absolute seconds so the gate is meaningful on
    hardware other than the machine that recorded the baseline.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    baseline_aggregates = baseline.get("aggregates", {})
    for key, current in report.aggregates.items():
        if not key.startswith("speedup_"):
            continue
        reference = baseline_aggregates.get(key)
        if reference is None or not math.isfinite(reference):
            continue
        floor = reference / regression_factor
        if current < floor:
            failures.append(
                f"{key}: speedup {current:.2f}x fell below {floor:.2f}x "
                f"(baseline {reference:.2f}x / factor {regression_factor})"
            )
    if not report.identical_makespans:
        failures.append("scalar and vectorized backends produced different makespans")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="scalar-vs-vectorized perf regression suite")
    parser.add_argument("--smoke", action="store_true", help="small CI configuration")
    parser.add_argument("--output", default="BENCH_perf.json", help="where to write the report")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=1, help="timing repeats (best-of)")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline BENCH_perf.json and exit non-zero on >2x speedup regression",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    print(f"perf suite ({mode} mode, seed {args.seed})")
    report = run_suite(mode, seed=args.seed, repeat=args.repeat)
    with open(args.output, "w") as fh:
        fh.write(report.to_json() + "\n")
    print(f"wrote {args.output}")
    for key in sorted(report.aggregates):
        print(f"  {key}: {report.aggregates[key]:.2f}x")
    print(f"  identical makespans: {report.identical_makespans}")

    if args.check:
        try:
            failures = check_regression(report, args.check, regression_factor=args.regression_factor)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.check!r}: {exc}", file=sys.stderr)
            return 2
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression gate passed")
    return 0 if report.identical_makespans else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
