"""Scalar-vs-vectorized performance regression harness.

Times every algorithm driver on a *multi-family* instance sweep (the mixed
Table-1 workload of the paper's running-time study plus power-law-work,
communication-bound, bimodal and tiny-n/huge-m families) under both backends
and writes the results to ``BENCH_perf.json``:

* per row: wall-clock seconds for ``backend="scalar"`` and
  ``backend="vectorized"``, the speedup, and whether the two backends produced
  *identical* makespans (they must — the vectorized layer is bit-compatible);
* aggregates: per-algorithm speedups, the geometric-mean speedup over the
  `(3/2+eps)` Table-1 algorithms on the ``n >= 1000`` instances, and the
  fptas/two_approx ``n >= 1000`` geomean that the columnar-assembly gate
  checks (``--min-fptas-two-approx``, default 8x).

Each (algorithm, family, n, m) configuration is one *shard*: ``--processes``
fans the shards across a ``multiprocessing`` pool (both backends of a shard
stay in the same worker so their ratio is unaffected by pool contention) and
the per-shard rows are merged back in configuration order.

``--smoke`` runs a small fixed configuration suitable for CI — combined with
``--families`` it assigns one family per algorithm round-robin, so a short
run still touches every requested family.  ``--check`` compares against a
checked-in baseline: the gate fails when an algorithm's *speedup* drops below
``baseline / regression_factor`` (speedups, unlike absolute seconds, transfer
across machines), when the baseline lacks an aggregate the run produces
(a stale baseline is a named failure, not a silent pass), when the backends
disagree on any makespan, or when an absolute floor is undershot (the
fptas/two_approx geomean, the list_schedule geomean, the
list_schedule_indexed scan-vs-index geomean on the no-tie ``chain`` family,
the candidate-visit reduction the index must deliver, or the re-plan
γ-probe reduction the fault-recovery warm start must deliver on the
``recovery`` rows — cold vs warm ``recover_with_faults`` on a seeded
fault plan, ``--min-recovery`` — or the fleet-serving throughput floor on
the ``serve`` rows, ``--min-serve-throughput`` — or the astronomical-m
floor on the ``huge_m`` rows, scalar heap loop vs wide-integer columnar
event-queue at m in {2^53+1, 2^64, 2^80}, ``--min-huge-m``).

``serve`` rows time :func:`repro.serve.schedule_many` over a small fleet
twice — once healthy and once under seeded 10% kill/hang/raise chaos — and
reuse the scalar/vectorized column pair for the healthy/chaos wall clocks;
because the fleet spawns worker processes of its own, serve shards always
run in the bench parent rather than the (daemonic) ``--processes`` pool.
Pooled shards are collected with a per-shard ``--shard-timeout`` deadline so
one hung configuration fails loudly with its row named instead of stalling
the whole run.
"""

from __future__ import annotations

import argparse
import json
import math
import multiprocessing
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.bounded_algorithm import bounded_schedule
from ..core.compressible_algorithm import compressible_schedule
from ..core.fptas import fptas_schedule
from ..core.mrt import mrt_schedule
from ..core.two_approx import two_approximation
from ..knapsack.compressible import _geom_cached
from ..workloads.generators import (
    random_bimodal_instance,
    random_chain_instance,
    random_communication_instance,
    random_mixed_instance,
    random_power_work_instance,
)

__all__ = ["BenchRow", "BenchReport", "run_suite", "main", "FAMILIES"]

#: Algorithms whose n>=1000 speedups form the headline geometric mean (the
#: paper's Table 1 covers the (3/2+eps) dual algorithms; MRT is its baseline).
TABLE1_ALGORITHMS = ("mrt", "compressible", "bounded_heap", "bounded_bucket")

#: Algorithms whose γ-probe counts are recorded warm vs cold (the oracle
#: warm-start instrumentation rows).
PROBE_ALGORITHMS = ("fptas", "two_approx")

#: All timed algorithms: the Table-1 set, the columnar-assembly headliners,
#: the isolated list-scheduling phase (scalar heap loop vs batched
#: event-queue backend on a fixed estimator allotment), and the candidate
#: index ablation (event-queue scan vs need-bucket index, same allotment).
#: The ``recovery`` shard (fault-driven survivor re-planning, warm vs cold
#: γ-cache) is swept separately — it is an end-to-end loop, not a
#: backend-vs-backend ratio, so it stays out of the tiny_n_huge_m sweep.
ALL_ALGORITHMS = TABLE1_ALGORITHMS + (
    "fptas",
    "two_approx",
    "list_schedule",
    "list_schedule_indexed",
)

SCHEDULE_EPS = 0.1
FPTAS_EPS = 0.5

#: Instance families of the sweep.  ``tiny_n_huge_m`` reuses the mixed
#: generator but with a config shape (n=64, m=2^22) that drives every
#: algorithm through its large-m dispatch (FPTAS regime); ``chain`` (run
#: with n >> m) is the no-tie single-completion regime that sweeps only the
#: candidate-index ablation rows.
FAMILIES: Dict[str, Callable] = {
    "mixed": random_mixed_instance,
    "powerwork": random_power_work_instance,
    "comm": random_communication_instance,
    "bimodal": random_bimodal_instance,
    "tiny_n_huge_m": random_mixed_instance,
    "chain": random_chain_instance,
}

DEFAULT_FAMILIES = tuple(FAMILIES)

_TINY_N = 64
_TINY_M = 1 << 22

#: Machine counts of the ``huge_m`` rows (scalar heap loop vs the
#: wide-integer columnar event-queue backend): just past the exact-float
#: boundary, past int64, and firmly in the wide-limb tier.  Kept out of
#: :data:`ALL_ALGORITHMS` — the rows pin their own m axis instead of
#: sweeping the family configs.
_HUGE_MS = ((1 << 53) + 1, 1 << 64, 1 << 80)

#: Fleet sizes of the ``megabatch`` rows (per-instance solo vectorized loop
#: vs one lockstep ``solve_mega`` pack): the lockstep win comes from
#: amortising per-call dispatch across the fleet, so the rows sweep the
#: fleet-size axis on small-n instances where dispatch dominates.  The gated
#: ``megabatch_speedup`` geomean reads the fleet >= 32 rows.
_MEGA_FLEETS = (8, 32, 128)
_MEGA_N = 6


def _chain_m(n: int) -> int:
    """Machine count of the chain family: n >> m forces a deep waiting queue
    (the single-completion no-tie regime the candidate index targets)."""
    return max(64, n // 16)


@dataclass
class BenchRow:
    algorithm: str
    family: str
    n: int
    m: int
    eps: float
    scalar_seconds: float
    vectorized_seconds: float
    speedup: float
    scalar_makespan: float
    vectorized_makespan: float
    makespans_identical: bool
    #: γ-probes the vectorized run spent with the warm-start policy on /
    #: off (0 for algorithms without probe instrumentation).
    gamma_probes_warm: int = 0
    gamma_probes_cold: int = 0
    #: Admission-query job-slot visits of the candidate-index ablation rows:
    #: the per-epoch O(n) scan vs the need-bucket index on the identical
    #: instance (0 for rows without the instrumentation).
    candidate_visits_scan: int = 0
    candidate_visits_indexed: int = 0
    #: Fault-epoch re-plans of the ``recovery`` rows (0 for every other
    #: algorithm) — with the row's warm seconds this yields re-plans/sec.
    replans: int = 0
    #: Fleet size of the ``serve`` rows (0 for every other algorithm): the
    #: row's scalar slot times the healthy fleet, the vectorized slot the
    #: same fleet under ~10% injected kill/hang/raise chaos, so
    #: ``serve_instances / seconds`` is the instances/sec throughput either
    #: way.  ``serve_degraded``/``serve_quarantined`` count the chaos run's
    #: non-clean outcomes (the report must still be complete).
    serve_instances: int = 0
    serve_degraded: int = 0
    serve_quarantined: int = 0
    #: Fleet size of the ``megabatch`` rows (0 for every other algorithm):
    #: the row's scalar slot times a per-instance solo vectorized loop over
    #: the fleet, the vectorized slot one lockstep ``solve_mega`` pack of the
    #: same instances — bit-identical per-instance results, so the speedup is
    #: pure dispatch amortisation.
    mega_fleet: int = 0


@dataclass
class BenchReport:
    mode: str
    seed: int
    python: str = field(default_factory=platform.python_version)
    platform: str = field(default_factory=platform.platform)
    families: List[str] = field(default_factory=lambda: list(DEFAULT_FAMILIES))
    processes: int = 1
    rows: List[BenchRow] = field(default_factory=list)
    aggregates: Dict[str, float] = field(default_factory=dict)
    identical_makespans: bool = True

    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True)


def _runner_for(algorithm: str) -> Callable:
    if algorithm == "mrt":
        return lambda jobs, m, backend: mrt_schedule(jobs, m, SCHEDULE_EPS, backend=backend)
    if algorithm == "compressible":
        return lambda jobs, m, backend: compressible_schedule(jobs, m, SCHEDULE_EPS, backend=backend)
    if algorithm == "bounded_heap":
        return lambda jobs, m, backend: bounded_schedule(
            jobs, m, SCHEDULE_EPS, transform="heap", backend=backend
        )
    if algorithm == "bounded_bucket":
        return lambda jobs, m, backend: bounded_schedule(
            jobs, m, SCHEDULE_EPS, transform="bucket", backend=backend
        )
    if algorithm == "fptas":
        return lambda jobs, m, backend: fptas_schedule(jobs, m, FPTAS_EPS, backend=backend)
    if algorithm == "two_approx":
        return lambda jobs, m, backend: two_approximation(jobs, m, backend=backend)
    raise KeyError(algorithm)


def _eps_for(algorithm: str) -> float:
    return FPTAS_EPS if algorithm == "fptas" else SCHEDULE_EPS


def _timed(fn: Callable[[], object], repeat: int, jobs) -> tuple[float, object]:
    best = math.inf
    result = None
    for _ in range(max(1, repeat)):
        # Clear every cross-run memo so neither backend benefits from a
        # previous (possibly other-backend) run of the same instance: the
        # geometric-grid cache and the per-job processing-time memos.
        _geom_cached.cache_clear()
        for job in jobs:
            job._cache.clear()
            job._cache_evictions = 0
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _normalize_families(families: Optional[Sequence[str]]) -> List[str]:
    names = list(families) if families else list(DEFAULT_FAMILIES)
    unknown = [f for f in names if f not in FAMILIES]
    if unknown:
        raise ValueError(f"unknown families {unknown}; available: {sorted(FAMILIES)}")
    return names


def _fptas_m(n: int) -> int:
    return max(1 << 21, int(8 * n / FPTAS_EPS) + 1)


def _configs(mode: str, families: Sequence[str]) -> List[dict]:
    """Instance configurations (shards) per mode.

    The full suite keeps ``m = 8n < 16n`` for the knapsack-based algorithms so
    their shelf-selection machinery is actually exercised, and ``m >= 8n/eps``
    for the FPTAS rows (its applicability regime); the ``tiny_n_huge_m``
    family instead pins ``n = 64, m = 2^22`` to cover every algorithm's
    large-m dispatch.  Smoke mode assigns one family per algorithm
    (round-robin over the requested families) so CI stays fast but still
    touches every family.
    """
    if mode == "smoke":
        configs = []
        for i, alg in enumerate(TABLE1_ALGORITHMS):
            family = families[i % len(families)]
            if family == "tiny_n_huge_m":
                configs.append(dict(algorithm=alg, family=family, n=_TINY_N, m=_TINY_M))
            elif family == "chain":
                configs.append(dict(algorithm=alg, family=family, n=120, m=_chain_m(120)))
            else:
                configs.append(dict(algorithm=alg, family=family, n=120, m=960))
        # fptas / two_approx run at n >= 1000 so the columnar-assembly floor
        # (--min-fptas-two-approx) is measured on meaningful instances.  Only
        # requested families are ever swept: a tiny_n_huge_m-only run gets
        # tiny-shaped coverage rows instead (and therefore no n>=1000 floor
        # measurement — there is nothing honest to measure there); the chain
        # family only ever sweeps the candidate-index ablation shard below.
        gate_families = [f for f in families if f not in ("tiny_n_huge_m", "chain")]
        if gate_families:
            configs.append(
                dict(algorithm="fptas", family=gate_families[0], n=2000, m=_fptas_m(2000))
            )
            configs.append(
                dict(algorithm="two_approx", family=gate_families[0], n=2000, m=16000)
            )
            configs.append(
                dict(algorithm="list_schedule", family=gate_families[0], n=2000, m=16000)
            )
            # the recovery floor (--min-recovery) is measured on a moderate
            # cluster: the seeded fault plan forces several re-plan epochs
            configs.append(
                dict(algorithm="recovery", family=gate_families[0], n=80, m=64)
            )
            # the online floor (--min-online): cold vs warm-started γ
            # re-planning across the arrival epochs of one seeded stream
            configs.append(
                dict(algorithm="online", family=gate_families[0], n=80, m=64)
            )
            # the serve floor (--min-serve-throughput) is measured on a small
            # fleet of independent instances (healthy vs 10%-chaos legs)
            configs.append(
                dict(algorithm="serve", family=gate_families[0], n=40, m=64)
            )
            # the astronomical-m floor (--min-huge-m): scalar heap loop vs
            # the wide-integer columnar event-queue backend past 2^53/2^64
            configs += [
                dict(algorithm="huge_m", family=gate_families[0], n=2000, m=m)
                for m in _HUGE_MS
            ]
            # the mega-batch floor (--min-megabatch): per-instance solo
            # vectorized loop vs one lockstep solve_mega pack, swept over the
            # fleet-size axis on small-n instances
            configs += [
                dict(
                    algorithm="megabatch",
                    family=gate_families[0],
                    n=_MEGA_N,
                    m=8 * _MEGA_N,
                    fleet=fleet,
                )
                for fleet in _MEGA_FLEETS
            ]
        elif "tiny_n_huge_m" in families:
            configs.append(
                dict(algorithm="fptas", family="tiny_n_huge_m", n=_TINY_N, m=_TINY_M)
            )
            configs.append(
                dict(algorithm="two_approx", family="tiny_n_huge_m", n=_TINY_N, m=_TINY_M)
            )
            configs.append(
                dict(algorithm="list_schedule", family="tiny_n_huge_m", n=_TINY_N, m=_TINY_M)
            )
        if "chain" in families:
            # the candidate-index floor (--min-list-schedule-indexed) is
            # measured on the no-tie regime at gate size
            configs.append(
                dict(
                    algorithm="list_schedule_indexed",
                    family="chain",
                    n=2000,
                    m=_chain_m(2000),
                )
            )
        # families the round-robin did not reach still get one cheap shard
        covered = {c["family"] for c in configs}
        for family in families:
            if family not in covered:
                n, m = (_TINY_N, _TINY_M) if family == "tiny_n_huge_m" else (120, _fptas_m(120))
                configs.append(dict(algorithm="fptas", family=family, n=n, m=m))
        return configs

    configs: List[dict] = []
    for family in families:
        if family == "tiny_n_huge_m":
            configs += [
                dict(algorithm=alg, family=family, n=_TINY_N, m=_TINY_M)
                for alg in ALL_ALGORITHMS
            ]
            continue
        if family == "chain":
            # deep-queue no-tie regime: only the candidate-index ablation is
            # meaningful here (n >> m starves every other algorithm's
            # vectorized machinery of work, so their ratios would be noise)
            configs += [
                dict(algorithm="list_schedule_indexed", family=family, n=n, m=_chain_m(n))
                for n in (1000, 2000)
            ]
            continue
        table1_sizes = (1000, 2000) if family == "mixed" else (1000,)
        configs += [
            dict(algorithm=alg, family=family, n=n, m=8 * n)
            for alg in TABLE1_ALGORITHMS
            for n in table1_sizes
        ]
        gate_sizes = (1000, 2000) if family == "mixed" else (2000,)
        configs += [
            dict(algorithm="fptas", family=family, n=n, m=_fptas_m(n))
            for n in gate_sizes
        ]
        configs += [
            dict(algorithm="two_approx", family=family, n=n, m=8 * n)
            for n in gate_sizes
        ]
        configs += [
            dict(algorithm="list_schedule", family=family, n=n, m=8 * n)
            for n in gate_sizes
        ]
        # fault-recovery loop: warm vs cold γ-cache across re-plan epochs
        configs.append(dict(algorithm="recovery", family=family, n=200, m=256))
        # online arrival-epoch loop: warm vs cold γ re-planning per stream
        configs.append(dict(algorithm="online", family=family, n=200, m=256))
        # fleet serving throughput: healthy vs 10%-chaos instances/sec
        configs.append(dict(algorithm="serve", family=family, n=60, m=96))
        # astronomical-m list scheduling (once, on the first eligible family):
        # the m axis is the variable here, not the instance family
        if family == next(
            (f for f in families if f not in ("tiny_n_huge_m", "chain")), None
        ):
            configs += [
                dict(algorithm="huge_m", family=family, n=n, m=m)
                for n in (1000, 2000)
                for m in _HUGE_MS
            ]
            # mega-batch lockstep fleet solving (once, on the first eligible
            # family): the fleet size is the variable here, not the instance
            configs += [
                dict(
                    algorithm="megabatch", family=family, n=_MEGA_N, m=8 * _MEGA_N,
                    fleet=fleet,
                )
                for fleet in _MEGA_FLEETS
            ]
    return configs


def _estimator_allotment(instance, m: int) -> tuple:
    """The shared untimed setup of the list-scheduling shards: the batched
    estimator allotment, the LPT order and the precomputed durations — one
    definition, so the ablation shards cannot drift apart in what they feed
    the timed backends."""
    import numpy as np

    from ..core.bounds import ludwig_tiwari_estimator
    from ..perf.oracle import BatchedOracle

    oracle = BatchedOracle(instance.jobs, m)
    estimate = ludwig_tiwari_estimator(instance.jobs, m, oracle=oracle)
    counts = estimate.allotment.counts
    times = oracle.times_at(np.array([counts[j] for j in instance.jobs], dtype=np.float64))
    order = [instance.jobs[i] for i in np.argsort(-times, kind="stable").tolist()]
    allotted = dict(zip(instance.jobs, times.tolist()))
    return estimate.allotment, order, allotted


def _list_schedule_shard(instance, m: int, repeat: int) -> tuple:
    """Time the isolated list-scheduling phase: scalar heap loop vs batched
    event-queue backend on the *same* estimator allotment and LPT order (the
    allotment is prepared once, untimed, with the batched estimator)."""
    from ..core.list_scheduling import list_schedule

    allotment, order, allotted = _estimator_allotment(instance, m)
    scalar_seconds, scalar_result = _timed(
        lambda: list_schedule(
            instance.jobs, allotment, m, order=order, backend="heap"
        ),
        repeat,
        instance.jobs,
    )
    vec_seconds, vec_result = _timed(
        lambda: list_schedule(
            instance.jobs,
            allotment,
            m,
            order=order,
            backend="event_queue",
            allotted_times=allotted,
        ),
        repeat,
        instance.jobs,
    )
    return scalar_seconds, scalar_result, vec_seconds, vec_result


def _huge_m_shard(instance, m: int, repeat: int) -> tuple:
    """Time the list-scheduling phase at astronomical m: the scalar heap
    loop (arbitrary-precision Python ints) vs the wide-integer columnar
    ``event_queue_indexed`` backend on the same allotment and LPT order.

    The allotment comes from the *scalar* estimator — ``BatchedOracle``
    (and with it :func:`_estimator_allotment`) rejects m beyond the float64
    integer range, which is exactly the regime these rows measure."""
    import numpy as np

    from ..core.bounds import ludwig_tiwari_estimator
    from ..core.list_scheduling import list_schedule

    # both legs finish in tens of milliseconds, so best-of-3 is essentially
    # free and keeps the gated ratio out of cold-start timing noise
    repeat = max(repeat, 3)
    estimate = ludwig_tiwari_estimator(instance.jobs, m)
    allotment = estimate.allotment
    counts = allotment.counts
    times = np.array(
        [job.processing_time(counts[job]) for job in instance.jobs], dtype=np.float64
    )
    order = [instance.jobs[i] for i in np.argsort(-times, kind="stable").tolist()]
    allotted = dict(zip(instance.jobs, times.tolist()))
    scalar_seconds, scalar_result = _timed(
        lambda: list_schedule(
            instance.jobs, allotment, m, order=order, backend="heap"
        ),
        repeat,
        instance.jobs,
    )
    vec_seconds, vec_result = _timed(
        lambda: list_schedule(
            instance.jobs,
            allotment,
            m,
            order=order,
            backend="event_queue_indexed",
            allotted_times=allotted,
        ),
        repeat,
        instance.jobs,
    )
    return scalar_seconds, scalar_result, vec_seconds, vec_result


def _list_schedule_indexed_shard(instance, m: int, repeat: int) -> tuple:
    """Time the candidate-index ablation: the PR-4 event-queue backend
    (per-epoch ``need <= idle`` scan) vs the need-bucket indexed backend on
    the *same* estimator allotment, LPT order and precomputed durations —
    the only difference between the timed runs is the admission query.
    Returns the timings, results and the per-run candidate-visit counters
    (``stats=`` instrumentation of the respective last timed repeat)."""
    from ..core.list_scheduling import list_schedule

    allotment, order, allotted = _estimator_allotment(instance, m)
    scan_stats: dict = {}
    indexed_stats: dict = {}
    scan_seconds, scan_result = _timed(
        lambda: list_schedule(
            instance.jobs,
            allotment,
            m,
            order=order,
            backend="event_queue",
            allotted_times=allotted,
            stats=scan_stats,
        ),
        repeat,
        instance.jobs,
    )
    indexed_seconds, indexed_result = _timed(
        lambda: list_schedule(
            instance.jobs,
            allotment,
            m,
            order=order,
            backend="event_queue_indexed",
            allotted_times=allotted,
            stats=indexed_stats,
        ),
        repeat,
        instance.jobs,
    )
    return (
        scan_seconds,
        scan_result,
        indexed_seconds,
        indexed_result,
        int(scan_stats.get("candidates_visited", 0)),
        int(indexed_stats.get("candidates_visited", 0)),
    )


def _probe_counts(instance, m: int, algorithm: str) -> tuple:
    """γ-probe totals of one vectorized run with the warm-start policy on
    (brackets + interpolation) and off (cold full bisection) — results are
    bit-identical, only the probe counts differ."""
    from ..perf.oracle import BatchedOracle

    counts = []
    for warm in (True, False):
        oracle = BatchedOracle(instance.jobs, m, warm_start=warm)
        for job in instance.jobs:
            job._cache.clear()
        if algorithm == "fptas":
            fptas_schedule(instance.jobs, m, FPTAS_EPS, oracle=oracle)
        else:
            two_approximation(instance.jobs, m, oracle=oracle)
        counts.append(oracle.gamma_probes)
    return counts[0], counts[1]


def _recovery_shard(instance, m: int, repeat: int, seed: int) -> tuple:
    """Time the fault-recovery loop cold vs warm on the *same* fault plan.

    Both runs drain-and-replan through the identical seeded
    :func:`random_fault_plan`; the only difference is the γ-cache policy of
    the per-epoch re-plan oracles (``warm_start`` + cross-epoch priming on
    vs cold full bisection).  The stitched schedules are bit-identical, so
    the cold run fills the row's ``scalar_seconds`` slot and the warm run
    its ``vectorized_seconds`` slot; the probe counters come from each
    run's :class:`DegradationReport`.
    """
    from ..core.bounds import trivial_lower_bound
    from ..resilience import random_fault_plan, recover_with_faults

    horizon = 1.5 * trivial_lower_bound(instance.jobs, m)
    plan = random_fault_plan(
        [job.name for job in instance.jobs],
        m,
        seed=seed ^ 0x5EED,
        failures=3,
        kills=2,
        horizon=max(horizon, 1.0),
    )
    cold_seconds, cold_result = _timed(
        lambda: recover_with_faults(
            instance.jobs, m, plan, eps=SCHEDULE_EPS,
            algorithm="two_approx", warm_start=False,
        ),
        repeat,
        instance.jobs,
    )
    warm_seconds, warm_result = _timed(
        lambda: recover_with_faults(
            instance.jobs, m, plan, eps=SCHEDULE_EPS, algorithm="two_approx"
        ),
        repeat,
        instance.jobs,
    )
    return (
        cold_seconds,
        cold_result,
        warm_seconds,
        warm_result,
        int(warm_result.report.gamma_probes or 0),
        int(cold_result.report.gamma_probes or 0),
        int(warm_result.report.replans),
    )


#: Arrival-base of the ``online`` shards per bench family (the bench family
#: names predate the arrivals generator's base registry).
_ONLINE_BASES = {
    "mixed": "mixed",
    "powerwork": "power_work",
    "comm": "communication",
    "bimodal": "bimodal",
    "tiny_n_huge_m": "mixed",
    "chain": "chain",
}


def _online_shard(family: str, n: int, m: int, repeat: int, seed: int) -> tuple:
    """Time the online arrival-epoch loop cold vs warm on the *same* stream.

    Both runs consume the identical seeded :func:`random_arrivals_instance`
    stream under the ``immediate`` epoch policy; the only difference is the
    γ-cache policy of the per-epoch re-plan oracles (``warm_start`` bracket +
    interpolation reuse on vs cold full bisection).  The stitched schedules
    must be bit-identical — the warm start is a pure accelerator — so the
    cold run fills the row's ``scalar_seconds`` slot and the warm run its
    ``vectorized_seconds`` slot; the probe counters come from each run's
    :class:`RegretReport`.
    """
    from ..online import OnlineScheduler
    from ..workloads.generators import random_arrivals_instance

    instance = random_arrivals_instance(
        n, m, seed=seed ^ 0x0411E, base=_ONLINE_BASES.get(family, "mixed")
    )
    arrivals = instance.arrivals
    cold_seconds, cold_result = _timed(
        lambda: OnlineScheduler(
            m, eps=SCHEDULE_EPS, algorithm="two_approx", warm_start=False
        ).run(arrivals),
        repeat,
        instance.jobs,
    )
    warm_seconds, warm_result = _timed(
        lambda: OnlineScheduler(
            m, eps=SCHEDULE_EPS, algorithm="two_approx"
        ).run(arrivals),
        repeat,
        instance.jobs,
    )
    warm_entries = [
        (e.job.name, e.start, tuple(e.spans)) for e in warm_result.schedule.entries
    ]
    cold_entries = [
        (e.job.name, e.start, tuple(e.spans)) for e in cold_result.schedule.entries
    ]
    if warm_entries != cold_entries:
        raise RuntimeError(
            f"online/{family} (n={n}, m={m}): warm-started re-planning "
            f"stitched a different schedule than cold — the warm start must "
            f"be a pure accelerator"
        )
    return (
        cold_seconds,
        cold_result,
        warm_seconds,
        warm_result,
        int(warm_result.report.gamma_probes or 0),
        int(cold_result.report.gamma_probes or 0),
        int(warm_result.report.replans),
    )


#: Fleet shape of the ``serve`` shards: instances per fleet and worker count.
_SERVE_FLEET = 12
_SERVE_WORKERS = 4
#: Injected failure probability of the chaos leg (split kill/hang/raise).
_SERVE_CHAOS = 0.10


def _serve_shard(family: str, n: int, m: int, repeat: int, seed: int) -> tuple:
    """Time the fleet scheduler healthy vs under ~10% injected chaos.

    One fleet of ``_SERVE_FLEET`` seeded instances is built once; the healthy
    leg fills the row's ``scalar_seconds`` slot, the chaos leg (seeded 10%
    kill/hang/raise, deadlines + retries live) its ``vectorized_seconds``
    slot.  The makespan identity check compares the healthy fleet's summed
    makespans against solo ``two_approximation`` runs of the same instances —
    the isolation layer must be bit-transparent.  Both legs must return a
    *complete* report; an unaccounted instance fails the shard loudly.
    """
    from ..serve import ChaosPolicy, FleetInstance, ServePolicy, schedule_many

    generator = FAMILIES[family]
    instances = [
        FleetInstance(
            name=f"serve-{family}-{i}",
            jobs=generator(n, m, seed=seed * 1000 + i).jobs,
            m=m,
            algorithm="two_approx",
        )
        for i in range(_SERVE_FLEET)
    ]
    solo_total = 0.0
    for inst in instances:
        for job in inst.jobs:
            job._cache.clear()
        solo_total += two_approximation(inst.jobs, m).makespan
    # generous healthy deadline (no false timeouts on slow CI runners); the
    # chaos leg runs a tight one so injected hangs cost ~2s, not an hour
    healthy_policy = ServePolicy(timeout=60.0, backoff_base=0.0, seed=seed)
    chaos_policy = ServePolicy(timeout=2.0, backoff_base=0.0, seed=seed)
    chaos = ChaosPolicy(
        seed=seed,
        kill_prob=_SERVE_CHAOS / 3,
        hang_prob=_SERVE_CHAOS / 3,
        raise_prob=_SERVE_CHAOS / 3,
        hang_seconds=30.0,
    )

    def _fleet(policy, chaos_policy):
        return schedule_many(
            instances,
            policy=policy,
            chaos=chaos_policy,
            max_workers=_SERVE_WORKERS,
            mp_context="fork",
        )

    healthy_seconds, healthy_report = _timed(
        lambda: _fleet(healthy_policy, None), repeat, []
    )
    chaos_seconds, chaos_report = _timed(
        lambda: _fleet(chaos_policy, chaos), repeat, []
    )
    for label, report in (("healthy", healthy_report), ("chaos", chaos_report)):
        if not report.complete:
            accounted = {o.instance for o in report.outcomes}
            missing = sorted(set(report.instances) - accounted)
            raise RuntimeError(
                f"serve/{family} (n={n}, m={m}): {label} fleet report is "
                f"incomplete — unaccounted instances {missing}"
            )
    if healthy_report.quarantined or healthy_report.degraded:
        raise RuntimeError(
            f"serve/{family} (n={n}, m={m}): healthy fleet run was not clean "
            f"({len(healthy_report.degraded)} degraded, "
            f"{len(healthy_report.quarantined)} quarantined)"
        )
    healthy_total = sum(o.makespan for o in healthy_report.outcomes)
    return (
        healthy_seconds,
        solo_total,
        chaos_seconds,
        healthy_total,
        len(chaos_report.degraded),
        len(chaos_report.quarantined),
    )


def _megabatch_shard(family: str, n: int, m: int, fleet: int, repeat: int, seed: int) -> tuple:
    """Time a fleet of small instances solo-vectorized vs one lockstep pack.

    The solo leg runs ``schedule_moldable`` per instance (vectorized backend,
    one γ-bisection per instance); the mega leg hands the *same* fleet to
    ``solve_mega`` as a single :class:`~repro.perf.megabatch.MegaBatch`, so
    every batched kernel call is shared across instances.  Results must be
    bit-identical per instance — the speedup is pure dispatch amortisation.
    Both legs clear the per-job memo caches between repeats via ``_timed``.
    """
    from ..core.scheduler import schedule_moldable
    from .megabatch import solve_mega

    # both legs are sub-second even at fleet 128; best-of-3 minimum keeps
    # the gated ratio out of scheduler-jitter territory
    repeat = max(repeat, 3)
    generator = FAMILIES[family]
    instances = [generator(n, m, seed=seed * 10_000 + i) for i in range(fleet)]
    all_jobs = [job for inst in instances for job in inst.jobs]

    def _solo():
        return [
            schedule_moldable(
                inst.jobs, m, SCHEDULE_EPS, algorithm="two_approx",
                backend="vectorized",
            )
            for inst in instances
        ]

    def _mega():
        return solve_mega(
            [(inst.jobs, m) for inst in instances],
            eps=SCHEDULE_EPS,
            algorithm="two_approx",
        )

    solo_seconds, solo_results = _timed(_solo, repeat, all_jobs)
    mega_seconds, mega_results = _timed(_mega, repeat, all_jobs)
    identical = all(
        a.makespan == b.makespan and a.lower_bound == b.lower_bound
        for a, b in zip(solo_results, mega_results)
    )
    solo_total = sum(r.makespan for r in solo_results)
    mega_total = sum(r.makespan for r in mega_results)
    return (solo_seconds, solo_total, mega_seconds, mega_total, identical)


def _bench_shard(task: tuple) -> BenchRow:
    """Time one (algorithm, family, n, m) shard under both backends.

    Module-level so a ``multiprocessing`` pool can pickle it; the instance is
    regenerated inside the worker from (family, n, m, seed), and both backends
    run in the *same* worker so pool contention cancels out of the ratio.
    ``fptas``/``two_approx`` shards additionally record the vectorized run's
    γ-probe totals warm vs cold (separate untimed passes).
    """
    config, seed, repeat = task
    algorithm = config["algorithm"]
    n, m, family = config["n"], config["m"], config["family"]
    visits_scan = visits_indexed = 0
    probes_warm = probes_cold = replans = 0
    if algorithm == "serve":
        (
            healthy_seconds,
            solo_total,
            chaos_seconds,
            healthy_total,
            degraded,
            quarantined,
        ) = _serve_shard(family, n, m, repeat, seed)
        return BenchRow(
            algorithm=algorithm,
            family=family,
            n=n,
            m=m,
            eps=SCHEDULE_EPS,
            scalar_seconds=healthy_seconds,
            vectorized_seconds=chaos_seconds,
            speedup=healthy_seconds / chaos_seconds if chaos_seconds > 0 else math.inf,
            scalar_makespan=solo_total,
            vectorized_makespan=healthy_total,
            makespans_identical=solo_total == healthy_total,
            serve_instances=_SERVE_FLEET,
            serve_degraded=degraded,
            serve_quarantined=quarantined,
        )
    if algorithm == "megabatch":
        fleet = config["fleet"]
        solo_seconds, solo_total, mega_seconds, mega_total, identical = (
            _megabatch_shard(family, n, m, fleet, repeat, seed)
        )
        return BenchRow(
            algorithm=algorithm,
            family=family,
            n=n,
            m=m,
            eps=SCHEDULE_EPS,
            scalar_seconds=solo_seconds,
            vectorized_seconds=mega_seconds,
            speedup=solo_seconds / mega_seconds if mega_seconds > 0 else math.inf,
            scalar_makespan=solo_total,
            vectorized_makespan=mega_total,
            makespans_identical=identical,
            mega_fleet=fleet,
        )
    if algorithm == "online":
        (
            cold_seconds,
            cold_result,
            warm_seconds,
            warm_result,
            probes_warm,
            probes_cold,
            replans,
        ) = _online_shard(family, n, m, repeat, seed)
        return BenchRow(
            algorithm=algorithm,
            family=family,
            n=n,
            m=m,
            eps=SCHEDULE_EPS,
            scalar_seconds=cold_seconds,
            vectorized_seconds=warm_seconds,
            speedup=cold_seconds / warm_seconds if warm_seconds > 0 else math.inf,
            scalar_makespan=cold_result.makespan,
            vectorized_makespan=warm_result.makespan,
            makespans_identical=cold_result.makespan == warm_result.makespan,
            gamma_probes_warm=probes_warm,
            gamma_probes_cold=probes_cold,
            replans=replans,
        )
    instance = FAMILIES[family](n, m, seed=seed)
    if algorithm == "recovery":
        (
            scalar_seconds,
            scalar_result,
            vec_seconds,
            vec_result,
            probes_warm,
            probes_cold,
            replans,
        ) = _recovery_shard(instance, m, repeat, seed)
    elif algorithm == "list_schedule":
        scalar_seconds, scalar_result, vec_seconds, vec_result = _list_schedule_shard(
            instance, m, repeat
        )
    elif algorithm == "huge_m":
        scalar_seconds, scalar_result, vec_seconds, vec_result = _huge_m_shard(
            instance, m, repeat
        )
    elif algorithm == "list_schedule_indexed":
        (
            scalar_seconds,
            scalar_result,
            vec_seconds,
            vec_result,
            visits_scan,
            visits_indexed,
        ) = _list_schedule_indexed_shard(instance, m, repeat)
    else:
        runner = _runner_for(algorithm)
        scalar_seconds, scalar_result = _timed(
            lambda: runner(instance.jobs, m, "scalar"), repeat, instance.jobs
        )
        vec_seconds, vec_result = _timed(
            lambda: runner(instance.jobs, m, "vectorized"), repeat, instance.jobs
        )
    if algorithm in PROBE_ALGORITHMS:
        probes_warm, probes_cold = _probe_counts(instance, m, algorithm)
    return BenchRow(
        algorithm=algorithm,
        family=family,
        n=n,
        m=m,
        eps=_eps_for(algorithm),
        scalar_seconds=scalar_seconds,
        vectorized_seconds=vec_seconds,
        speedup=scalar_seconds / vec_seconds if vec_seconds > 0 else math.inf,
        scalar_makespan=scalar_result.makespan,
        vectorized_makespan=vec_result.makespan,
        makespans_identical=scalar_result.makespan == vec_result.makespan,
        gamma_probes_warm=probes_warm,
        gamma_probes_cold=probes_cold,
        candidate_visits_scan=visits_scan,
        candidate_visits_indexed=visits_indexed,
        replans=replans,
    )


class BenchShardTimeout(RuntimeError):
    """A pooled bench shard exceeded ``--shard-timeout`` (names the rows)."""


def _task_label(task: tuple) -> str:
    config = task[0]
    return f"{config['algorithm']}/{config['family']} (n={config['n']}, m={config['m']})"


def _collect_pool_rows(
    handles: Sequence[tuple], shard_timeout: Optional[float]
) -> List[BenchRow]:
    """Collect ``(task, AsyncResult)`` pairs with a per-shard deadline.

    One hung shard must fail *that shard* with a named-row message instead of
    stalling the whole run until a job-level CI kill: every shard whose
    result does not arrive within its own :class:`~repro.serve.deadlines.Deadline`
    is recorded, and after the sweep a :class:`BenchShardTimeout` names them
    all (slower-finishing healthy shards collected meanwhile are unaffected).
    """
    from ..serve.deadlines import Deadline

    rows: List[BenchRow] = []
    hung: List[str] = []
    for task, handle in handles:
        deadline = Deadline(shard_timeout)
        try:
            remaining = None if shard_timeout is None else deadline.remaining()
            rows.append(handle.get(remaining))
        except multiprocessing.TimeoutError:
            hung.append(_task_label(task))
    if hung:
        raise BenchShardTimeout(
            f"bench shard(s) exceeded the per-shard timeout of {shard_timeout}s "
            f"and were abandoned (pool terminated) — rows: {', '.join(hung)}"
        )
    return rows


def run_suite(
    mode: str = "full",
    *,
    seed: int = 7,
    repeat: int = 1,
    verbose: bool = True,
    families: Optional[Sequence[str]] = None,
    processes: int = 1,
    shard_timeout: Optional[float] = 900.0,
) -> BenchReport:
    """Run the scalar-vs-vectorized suite and return the report.

    ``families`` selects the instance families (default: all).  ``processes``
    > 1 fans the shards across a ``multiprocessing`` pool; per-shard rows are
    merged back in configuration order either way, and each pooled shard must
    deliver its row within ``shard_timeout`` seconds (``None`` disables) or
    the run fails with a :class:`BenchShardTimeout` naming the hung rows.
    """
    if mode not in ("full", "smoke"):
        raise ValueError(f"unknown mode {mode!r}")
    family_names = _normalize_families(families)
    processes = max(1, int(processes))
    report = BenchReport(mode=mode, seed=seed, families=family_names, processes=processes)
    configs = _configs(mode, family_names)
    tasks = [(config, seed, repeat) for config in configs]
    if processes > 1:
        try:
            # fork inherits sys.path (the CLI entry point extends it at
            # runtime); spawn is the fallback for platforms without fork.
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context("spawn")
        # serve shards spawn worker fleets of their own, which daemonic pool
        # workers may not do — they run in the parent after the pool drains
        pool_tasks = [t for t in tasks if t[0]["algorithm"] != "serve"]
        with ctx.Pool(processes) as pool:
            handles = [(t, pool.apply_async(_bench_shard, (t,))) for t in pool_tasks]
            pool_rows = _collect_pool_rows(handles, shard_timeout)
        pooled = iter(pool_rows)
        rows = [
            _bench_shard(task) if task[0]["algorithm"] == "serve" else next(pooled)
            for task in tasks
        ]
    else:
        rows = []
        for task in tasks:
            row = _bench_shard(task)
            rows.append(row)
            if verbose:
                _print_row(row)
    if processes > 1 and verbose:
        for row in rows:
            _print_row(row)
    for row in rows:
        report.rows.append(row)
        report.identical_makespans &= row.makespans_identical
    report.aggregates = _aggregate(report.rows)
    return report


def _print_row(row: BenchRow) -> None:
    if row.algorithm == "serve":
        print(
            f"  {row.algorithm:15s} {row.family:13s} n={row.n:<5d} m={row.m:<8d} "
            f"healthy {row.scalar_seconds:7.3f}s  chaos {row.vectorized_seconds:7.3f}s  "
            f"{row.serve_instances} instances "
            f"({row.serve_degraded} degraded, {row.serve_quarantined} quarantined)  "
            f"makespans {'identical' if row.makespans_identical else 'DIFFER'}"
        )
        return
    if row.algorithm == "megabatch":
        print(
            f"  {row.algorithm:15s} {row.family:13s} n={row.n:<5d} m={row.m:<8d} "
            f"solo {row.scalar_seconds:7.3f}s  mega {row.vectorized_seconds:7.3f}s  "
            f"speedup {row.speedup:5.1f}x  fleet={row.mega_fleet}  "
            f"makespans {'identical' if row.makespans_identical else 'DIFFER'}"
        )
        return
    if row.algorithm == "online":
        print(
            f"  {row.algorithm:15s} {row.family:13s} n={row.n:<5d} m={row.m:<8d} "
            f"cold {row.scalar_seconds:7.3f}s  warm {row.vectorized_seconds:7.3f}s  "
            f"probes {row.gamma_probes_warm} vs {row.gamma_probes_cold}  "
            f"re-plans {row.replans}  "
            f"makespans {'identical' if row.makespans_identical else 'DIFFER'}"
        )
        return
    print(
        f"  {row.algorithm:15s} {row.family:13s} n={row.n:<5d} m={row.m:<8d} "
        f"scalar {row.scalar_seconds:7.3f}s  vectorized {row.vectorized_seconds:7.3f}s  "
        f"speedup {row.speedup:5.1f}x  "
        f"makespans {'identical' if row.makespans_identical else 'DIFFER'}"
    )


def _aggregate(rows: Sequence[BenchRow]) -> Dict[str, float]:
    aggregates: Dict[str, float] = {}
    by_algorithm: Dict[str, List[float]] = {}
    by_algorithm_n1000: Dict[str, List[float]] = {}
    for row in rows:
        if row.algorithm in ("serve", "megabatch"):
            # serve rows time healthy-vs-chaos fleet legs and megabatch rows
            # solo-vs-lockstep packing — neither is a backend ratio; they
            # feed their dedicated aggregates below instead
            continue
        by_algorithm.setdefault(row.algorithm, []).append(row.speedup)
        if row.n >= 1000:
            by_algorithm_n1000.setdefault(row.algorithm, []).append(row.speedup)
    for algorithm, speedups in by_algorithm.items():
        aggregates[f"speedup_{algorithm}"] = _geomean(speedups)
    for algorithm, speedups in by_algorithm_n1000.items():
        aggregates[f"speedup_{algorithm}_n1000"] = _geomean(speedups)
    headline = [
        row.speedup
        for row in rows
        if row.algorithm in TABLE1_ALGORITHMS and row.n >= 1000
    ]
    if headline:
        aggregates["table1_speedup_geomean_n1000"] = _geomean(headline)
        aggregates["table1_speedup_min_n1000"] = min(headline)
    assembly_all = [
        row.speedup
        for row in rows
        if row.algorithm in ("fptas", "two_approx") and row.n >= 1000
    ]
    if assembly_all:
        aggregates["fptas_two_approx_geomean_n1000"] = _geomean(assembly_all)
    # The gated number: Table-1 (mixed-family) instances only — the easy
    # families (heavy-tailed powerwork in particular) finish so fast under
    # the scalar backend that their ratios say little about assembly cost.
    assembly_table1 = [
        row.speedup
        for row in rows
        if row.algorithm in ("fptas", "two_approx") and row.n >= 1000 and row.family == "mixed"
    ]
    if assembly_table1:
        aggregates["fptas_two_approx_table1_geomean_n1000"] = _geomean(assembly_table1)
    # γ-probe warm-start accounting over the instrumented (fptas/two_approx)
    # rows: total probes with the warm-start policy on vs off, and the
    # relative reduction the policy buys.  Recovery rows carry the same
    # counters but measure a different policy (cross-epoch priming), so they
    # are aggregated separately below rather than folded in here.
    warm_total = sum(row.gamma_probes_warm for row in rows if row.algorithm in PROBE_ALGORITHMS)
    cold_total = sum(row.gamma_probes_cold for row in rows if row.algorithm in PROBE_ALGORITHMS)
    if cold_total > 0:
        aggregates["gamma_probes_warm_total"] = float(warm_total)
        aggregates["gamma_probes_cold_total"] = float(cold_total)
        aggregates["gamma_probe_reduction"] = 1.0 - warm_total / cold_total
    # Fault-recovery accounting over the ``recovery`` rows: total re-plan
    # γ-probes warm (cross-epoch priming + bracket narrowing) vs cold, the
    # relative reduction, and the warm loop's re-planning throughput.
    recovery_rows = [row for row in rows if row.algorithm == "recovery"]
    if recovery_rows:
        rec_warm = sum(row.gamma_probes_warm for row in recovery_rows)
        rec_cold = sum(row.gamma_probes_cold for row in recovery_rows)
        rec_replans = sum(row.replans for row in recovery_rows)
        rec_seconds = sum(row.vectorized_seconds for row in recovery_rows)
        if rec_cold > 0:
            aggregates["recovery_probes_warm_total"] = float(rec_warm)
            aggregates["recovery_probes_cold_total"] = float(rec_cold)
            aggregates["recovery_probe_reduction"] = 1.0 - rec_warm / rec_cold
        aggregates["recovery_replans_total"] = float(rec_replans)
        if rec_seconds > 0:
            aggregates["recovery_replans_per_sec"] = rec_replans / rec_seconds
    # Online arrival-epoch accounting over the ``online`` rows: total re-plan
    # γ-probes warm (bracket + interpolation reuse across epochs) vs cold,
    # the relative reduction, and the warm loop's re-planning throughput.
    online_rows = [row for row in rows if row.algorithm == "online"]
    if online_rows:
        onl_warm = sum(row.gamma_probes_warm for row in online_rows)
        onl_cold = sum(row.gamma_probes_cold for row in online_rows)
        onl_replans = sum(row.replans for row in online_rows)
        onl_seconds = sum(row.vectorized_seconds for row in online_rows)
        if onl_cold > 0:
            aggregates["online_probes_warm_total"] = float(onl_warm)
            aggregates["online_probes_cold_total"] = float(onl_cold)
            aggregates["online_probe_reduction"] = 1.0 - onl_warm / onl_cold
        aggregates["online_replans_total"] = float(onl_replans)
        if onl_seconds > 0:
            aggregates["online_replans_per_sec"] = onl_replans / onl_seconds
    # Candidate-index accounting over the instrumented (list_schedule_indexed)
    # rows: total admission-query job-slot visits of the per-epoch scan vs
    # the need-bucket index, and the relative reduction the index buys.
    instrumented = [row for row in rows if row.candidate_visits_scan > 0]
    visits_scan = sum(row.candidate_visits_scan for row in instrumented)
    visits_indexed = sum(row.candidate_visits_indexed for row in instrumented)
    if visits_scan > 0:
        aggregates["candidate_visits_scan_total"] = float(visits_scan)
        aggregates["candidate_visits_indexed_total"] = float(visits_indexed)
        aggregates["candidate_visit_reduction"] = 1.0 - visits_indexed / visits_scan
    # Fleet-serving accounting over the ``serve`` rows: instances solved per
    # second with a healthy fleet vs the same fleet under seeded 10% chaos
    # (retries, kills and deadline recycling included in the wall clock).
    serve_rows = [row for row in rows if row.algorithm == "serve"]
    if serve_rows:
        serve_total = sum(row.serve_instances for row in serve_rows)
        healthy_seconds = sum(row.scalar_seconds for row in serve_rows)
        chaos_seconds = sum(row.vectorized_seconds for row in serve_rows)
        if healthy_seconds > 0:
            aggregates["serve_throughput_healthy"] = serve_total / healthy_seconds
        if chaos_seconds > 0:
            aggregates["serve_throughput_chaos"] = serve_total / chaos_seconds
        aggregates["serve_instances_total"] = float(serve_total)
        aggregates["serve_degraded_total"] = float(
            sum(row.serve_degraded for row in serve_rows)
        )
        aggregates["serve_quarantined_total"] = float(
            sum(row.serve_quarantined for row in serve_rows)
        )
    # Mega-batch accounting over the ``megabatch`` rows: the gated geomean
    # reads the fleet >= 32 rows (the regime the lockstep amortisation is
    # promised for); the all-fleet geomean is recorded for the curve.
    mega_rows = [row for row in rows if row.algorithm == "megabatch"]
    if mega_rows:
        aggregates["megabatch_speedup_all"] = _geomean(
            [row.speedup for row in mega_rows]
        )
        gated = [row.speedup for row in mega_rows if row.mega_fleet >= 32]
        if gated:
            aggregates["megabatch_speedup"] = _geomean(gated)
    aggregates["speedup_geomean_all"] = _geomean(
        [row.speedup for row in rows if row.algorithm not in ("serve", "megabatch")]
    )
    return aggregates


def _geomean(values: Sequence[float]) -> float:
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return float("nan")
    return math.exp(sum(math.log(v) for v in finite) / len(finite))


def _row_label(row: BenchRow) -> str:
    return f"{row.algorithm}/{row.family} (n={row.n}, m={row.m})"


def _contributing_rows(rows: Sequence[BenchRow], algorithms, family=None) -> List[BenchRow]:
    out = [
        row
        for row in rows
        if row.algorithm in algorithms
        and row.n >= 1000
        and (family is None or row.family == family)
    ]
    return sorted(out, key=lambda r: r.speedup)


def check_regression(
    report: BenchReport,
    baseline_path: str,
    *,
    regression_factor: float = 2.0,
    min_fptas_two_approx: Optional[float] = 8.0,
    min_list_schedule: Optional[float] = 2.0,
    min_list_schedule_indexed: Optional[float] = 1.3,
    min_visit_reduction: Optional[float] = 0.5,
    min_recovery: Optional[float] = 0.5,
    min_online: Optional[float] = 0.5,
    min_serve_throughput: Optional[float] = 0.5,
    min_huge_m: Optional[float] = 2.0,
    min_megabatch: Optional[float] = 3.0,
) -> List[str]:
    """Compare per-algorithm speedups against a baseline report.

    Returns a list of human-readable failures (empty = gate passes); every
    aggregate failure also names the contributing (algorithm, family) rows,
    slowest first, so a red gate points at the offending configuration
    directly.  Speedup ratios are used rather than absolute seconds so the
    gate is meaningful on hardware other than the machine that recorded the
    baseline.  A per-algorithm speedup aggregate the current run produced
    but the baseline lacks is itself a *named* failure (the baseline is
    stale — e.g. freshly added rows vs an old ``BENCH_perf_baseline.json``)
    rather than a silent skip or a ``KeyError``.  In addition to the
    relative baseline check, absolute floors are enforced: the
    fptas/two_approx ``n >= 1000`` geomean (``min_fptas_two_approx``, the
    columnar schedule-assembly guarantee), the list_schedule ``n >= 1000``
    geomean (``min_list_schedule``, the event-queue backend guarantee), the
    list_schedule_indexed ``n >= 1000`` geomean
    (``min_list_schedule_indexed``, the candidate-index-vs-scan guarantee on
    the no-tie chain regime), the candidate-visit reduction
    (``min_visit_reduction``, the index's admission-query work guarantee)
    and the recovery probe reduction (``min_recovery``, the γ-probes the
    cross-epoch warm start must save the fault-recovery re-plans over cold
    bisection) and the online probe reduction (``min_online``, the same
    guarantee for the arrival-epoch re-plans of ``OnlineScheduler``, whose
    warm and cold runs must also stitch identical schedules — an online row
    with diverging makespans fails the identity check below) and the
    fleet-serving throughputs (``min_serve_throughput``,
    instances/sec both healthy and under seeded 10% chaos — the chaos leg
    includes kills, hangs-to-deadline and retries in its wall clock) and the
    astronomical-m geomean (``min_huge_m``, scalar heap loop vs the
    wide-integer columnar event-queue backend at m past 2^53/2^64/2^80) and
    the mega-batch geomean (``min_megabatch``, per-instance solo vectorized
    loop vs one lockstep ``solve_mega`` pack over the fleet >= 32 rows);
    pass ``None`` to skip any of them.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    baseline_aggregates = baseline.get("aggregates", {})
    # a baseline with no speedup aggregates at all records no reference run
    # (floors-only checking); one with *some* is stale when keys are missing
    baseline_has_speedups = any(k.startswith("speedup_") for k in baseline_aggregates)

    def _algorithm_rows(algorithm: str) -> str:
        return ", ".join(
            f"{_row_label(r)}: {r.speedup:.2f}x"
            for r in sorted(
                (r for r in report.rows if r.algorithm == algorithm),
                key=lambda r: r.speedup,
            )
        )

    for key, current in report.aggregates.items():
        if not key.startswith("speedup_"):
            continue
        algorithm = key[len("speedup_") :].removesuffix("_n1000")
        reference = baseline_aggregates.get(key)
        if reference is None:
            # the baseline predates rows the current run produces: name the
            # missing aggregate and its rows instead of silently passing.
            # Only the bare per-algorithm keys are required — every mode
            # records one for each algorithm it sweeps, so a missing one
            # genuinely means the baseline predates the algorithm's rows;
            # the ``_n1000`` refinements and the all-row geomean depend on
            # the recording mode's instance sizes and stay a silent skip.
            if (
                baseline_has_speedups
                and key != "speedup_geomean_all"
                and not key.endswith("_n1000")
            ):
                detail = _algorithm_rows(algorithm)
                failures.append(
                    f"{key}: baseline {baseline_path!r} has no reference for "
                    f"this aggregate — re-record the baseline to cover the "
                    f"new rows" + (f" — rows: {detail}" if detail else "")
                )
            continue
        if not math.isfinite(reference):
            continue
        floor = reference / regression_factor
        if current < floor:
            detail = _algorithm_rows(algorithm)
            failures.append(
                f"{key}: speedup {current:.2f}x fell below {floor:.2f}x "
                f"(baseline {reference:.2f}x / factor {regression_factor})"
                + (f" — rows: {detail}" if detail else "")
            )
    if min_fptas_two_approx is not None:
        # Gate on the Table-1 (mixed-family) geomean; when the run swept no
        # mixed n>=1000 rows, fall back to the all-family geomean rather than
        # silently passing a requested floor without measuring anything.
        key = "fptas_two_approx_table1_geomean_n1000"
        family = "mixed"
        assembly = report.aggregates.get(key)
        if assembly is None:
            key = "fptas_two_approx_geomean_n1000"
            family = None
            assembly = report.aggregates.get(key)
        if assembly is not None and assembly < min_fptas_two_approx:
            detail = ", ".join(
                f"{_row_label(r)}: {r.speedup:.2f}x"
                for r in _contributing_rows(report.rows, ("fptas", "two_approx"), family)
            )
            failures.append(
                f"{key}: {assembly:.2f}x fell below the "
                f"columnar-assembly floor {min_fptas_two_approx:.2f}x — rows: {detail}"
            )
    if min_list_schedule is not None:
        ls = report.aggregates.get("speedup_list_schedule_n1000")
        if ls is not None and ls < min_list_schedule:
            detail = ", ".join(
                f"{_row_label(r)}: {r.speedup:.2f}x"
                for r in _contributing_rows(report.rows, ("list_schedule",))
            )
            failures.append(
                f"speedup_list_schedule_n1000: {ls:.2f}x fell below the "
                f"event-queue floor {min_list_schedule:.2f}x — rows: {detail}"
            )
    if min_list_schedule_indexed is not None:
        lsi = report.aggregates.get("speedup_list_schedule_indexed_n1000")
        if lsi is not None and lsi < min_list_schedule_indexed:
            detail = ", ".join(
                f"{_row_label(r)}: {r.speedup:.2f}x "
                f"(visits scan {r.candidate_visits_scan} vs indexed "
                f"{r.candidate_visits_indexed})"
                for r in _contributing_rows(report.rows, ("list_schedule_indexed",))
            )
            failures.append(
                f"speedup_list_schedule_indexed_n1000: {lsi:.2f}x fell below "
                f"the candidate-index floor {min_list_schedule_indexed:.2f}x "
                f"— rows: {detail}"
            )
    if min_visit_reduction is not None:
        reduction = report.aggregates.get("candidate_visit_reduction")
        if reduction is not None and reduction < min_visit_reduction:
            detail = ", ".join(
                f"{_row_label(r)}: scan {r.candidate_visits_scan} vs indexed "
                f"{r.candidate_visits_indexed}"
                for r in sorted(
                    (r for r in report.rows if r.candidate_visits_scan > 0),
                    key=lambda r: r.candidate_visits_scan - r.candidate_visits_indexed,
                )
            )
            failures.append(
                f"candidate_visit_reduction: {100.0 * reduction:.1f}% fell "
                f"below the index admission-query floor "
                f"{100.0 * min_visit_reduction:.1f}% — rows: {detail}"
            )
    if min_recovery is not None:
        reduction = report.aggregates.get("recovery_probe_reduction")
        if reduction is not None and reduction < min_recovery:
            detail = ", ".join(
                f"{_row_label(r)}: warm {r.gamma_probes_warm} vs cold "
                f"{r.gamma_probes_cold} over {r.replans} re-plans"
                for r in sorted(
                    (r for r in report.rows if r.algorithm == "recovery"),
                    key=lambda r: r.gamma_probes_cold - r.gamma_probes_warm,
                )
            )
            failures.append(
                f"recovery_probe_reduction: {100.0 * reduction:.1f}% fell "
                f"below the re-plan warm-start floor "
                f"{100.0 * min_recovery:.1f}% — rows: {detail}"
            )
    if min_online is not None:
        reduction = report.aggregates.get("online_probe_reduction")
        if reduction is not None and reduction < min_online:
            detail = ", ".join(
                f"{_row_label(r)}: warm {r.gamma_probes_warm} vs cold "
                f"{r.gamma_probes_cold} over {r.replans} re-plans"
                for r in sorted(
                    (r for r in report.rows if r.algorithm == "online"),
                    key=lambda r: r.gamma_probes_cold - r.gamma_probes_warm,
                )
            )
            failures.append(
                f"online_probe_reduction: {100.0 * reduction:.1f}% fell "
                f"below the arrival-epoch warm-start floor "
                f"{100.0 * min_online:.1f}% — rows: {detail}"
            )
    if min_huge_m is not None:
        hm = report.aggregates.get("speedup_huge_m")
        if hm is not None and hm < min_huge_m:
            detail = ", ".join(
                f"{_row_label(r)}: {r.speedup:.2f}x"
                for r in sorted(
                    (r for r in report.rows if r.algorithm == "huge_m"),
                    key=lambda r: r.speedup,
                )
            )
            failures.append(
                f"speedup_huge_m: {hm:.2f}x fell below the astronomical-m "
                f"floor {min_huge_m:.2f}x — rows: {detail}"
            )
    if min_megabatch is not None:
        mb = report.aggregates.get("megabatch_speedup")
        if mb is not None and mb < min_megabatch:
            detail = ", ".join(
                f"{_row_label(r)}: {r.speedup:.2f}x (fleet={r.mega_fleet})"
                for r in sorted(
                    (r for r in report.rows if r.algorithm == "megabatch"),
                    key=lambda r: r.speedup,
                )
            )
            failures.append(
                f"megabatch_speedup: {mb:.2f}x fell below the mega-batch "
                f"lockstep floor {min_megabatch:.2f}x — rows: {detail}"
            )
    if min_serve_throughput is not None:
        serve_rows = sorted(
            (r for r in report.rows if r.algorithm == "serve"),
            key=lambda r: r.serve_instances / r.scalar_seconds if r.scalar_seconds else 0.0,
        )
        for key, leg in (
            ("serve_throughput_healthy", "healthy"),
            ("serve_throughput_chaos", "chaos"),
        ):
            throughput = report.aggregates.get(key)
            if throughput is None or throughput >= min_serve_throughput:
                continue
            detail = ", ".join(
                f"{_row_label(r)}: {r.serve_instances} instances in healthy "
                f"{r.scalar_seconds:.2f}s / chaos {r.vectorized_seconds:.2f}s "
                f"({r.serve_degraded} degraded, {r.serve_quarantined} quarantined)"
                for r in serve_rows
            )
            failures.append(
                f"{key}: {throughput:.2f} instances/s ({leg} fleet) fell below "
                f"the fleet-serving floor {min_serve_throughput:.2f} — rows: "
                f"{detail}"
            )
    if not report.identical_makespans:
        mismatched = ", ".join(
            f"{_row_label(r)}: scalar {r.scalar_makespan!r} != "
            f"vectorized {r.vectorized_makespan!r}"
            for r in report.rows
            if not r.makespans_identical
        )
        failures.append(
            "scalar and vectorized backends produced different makespans — "
            f"rows: {mismatched}"
        )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="scalar-vs-vectorized perf regression suite")
    parser.add_argument("--smoke", action="store_true", help="small CI configuration")
    parser.add_argument("--output", default="BENCH_perf.json", help="where to write the report")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=1, help="timing repeats (best-of)")
    parser.add_argument(
        "--families",
        default=None,
        help="comma-separated instance families to sweep "
        f"(default: all of {','.join(DEFAULT_FAMILIES)}); smoke mode assigns "
        "one family per algorithm round-robin",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="fan the per-configuration shards across a multiprocessing pool "
        "(default 1: sequential, best for clean timings); serve shards spawn "
        "worker fleets of their own and always run in the parent",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=900.0,
        help="per-shard deadline [s] when --processes > 1: a pooled shard "
        "that does not deliver its row in time fails the run with a named "
        "BenchShardTimeout instead of stalling it (0 disables)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline BENCH_perf.json and exit non-zero on >2x speedup regression",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    parser.add_argument(
        "--min-fptas-two-approx",
        type=float,
        default=8.0,
        help="absolute floor for the fptas/two_approx n>=1000 speedup geomean "
        "on Table-1 (mixed-family) rows, enforced by --check; falls back to "
        "the all-family geomean when the run swept no mixed rows (0 disables)",
    )
    parser.add_argument(
        "--min-list-schedule",
        type=float,
        default=2.0,
        help="absolute floor for the list_schedule n>=1000 speedup geomean "
        "(scalar heap loop vs batched event-queue backend), enforced by "
        "--check (0 disables)",
    )
    parser.add_argument(
        "--min-list-schedule-indexed",
        type=float,
        default=1.3,
        help="absolute floor for the list_schedule_indexed n>=1000 speedup "
        "geomean (event-queue per-epoch scan vs need-bucket candidate index "
        "on the no-tie chain family), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-visit-reduction",
        type=float,
        default=0.5,
        help="absolute floor for candidate_visit_reduction (relative "
        "admission-query work the candidate index saves over the per-epoch "
        "scan), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-recovery",
        type=float,
        default=0.5,
        help="absolute floor for recovery_probe_reduction (relative γ-probe "
        "work the cross-epoch warm start saves the fault-recovery re-plans "
        "over cold bisection), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-online",
        type=float,
        default=0.5,
        help="absolute floor for online_probe_reduction (relative γ-probe "
        "work the cross-epoch warm start saves the arrival-epoch re-plans "
        "over cold bisection; warm and cold must stitch identical "
        "schedules), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-serve-throughput",
        type=float,
        default=0.5,
        help="absolute floor for serve_throughput_healthy and "
        "serve_throughput_chaos (fleet instances/sec, healthy and under "
        "seeded 10%% chaos), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-huge-m",
        type=float,
        default=2.0,
        help="absolute floor for the huge_m speedup geomean (scalar heap "
        "loop vs wide-integer columnar event-queue backend at astronomical "
        "machine counts), enforced by --check (0 disables)",
    )
    parser.add_argument(
        "--min-megabatch",
        type=float,
        default=3.0,
        help="absolute floor for the megabatch speedup geomean (per-instance "
        "solo vectorized loop vs one lockstep solve_mega pack, fleet >= 32 "
        "rows), enforced by --check (0 disables)",
    )
    args = parser.parse_args(argv)

    families = [f.strip() for f in args.families.split(",") if f.strip()] if args.families else None
    mode = "smoke" if args.smoke else "full"
    print(f"perf suite ({mode} mode, seed {args.seed})")
    report = run_suite(
        mode,
        seed=args.seed,
        repeat=args.repeat,
        families=families,
        processes=args.processes,
        shard_timeout=args.shard_timeout or None,
    )
    with open(args.output, "w") as fh:
        fh.write(report.to_json() + "\n")
    print(f"wrote {args.output}")
    for key in sorted(report.aggregates):
        value = report.aggregates[key]
        if key in (
            "gamma_probe_reduction",
            "candidate_visit_reduction",
            "recovery_probe_reduction",
            "online_probe_reduction",
        ):
            print(f"  {key}: {100.0 * value:.1f}%")
        elif key in ("recovery_replans_per_sec", "online_replans_per_sec"):
            print(f"  {key}: {value:.1f}/s")
        elif key.startswith("serve_throughput_"):
            print(f"  {key}: {value:.2f}/s")
        elif key.startswith(
            ("gamma_probes_", "candidate_visits_", "recovery_", "serve_", "online_")
        ):
            print(f"  {key}: {value:.0f}")
        else:
            print(f"  {key}: {value:.2f}x")
    print(f"  identical makespans: {report.identical_makespans}")

    if args.check:
        try:
            failures = check_regression(
                report,
                args.check,
                regression_factor=args.regression_factor,
                min_fptas_two_approx=args.min_fptas_two_approx or None,
                min_list_schedule=args.min_list_schedule or None,
                min_list_schedule_indexed=args.min_list_schedule_indexed or None,
                min_visit_reduction=args.min_visit_reduction or None,
                min_recovery=args.min_recovery or None,
                min_online=args.min_online or None,
                min_serve_throughput=args.min_serve_throughput or None,
                min_huge_m=args.min_huge_m or None,
                min_megabatch=args.min_megabatch or None,
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.check!r}: {exc}", file=sys.stderr)
            return 2
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression gate passed")
    return 0 if report.identical_makespans else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
