"""Columnar schedule assembly: build a :class:`~repro.core.schedule.Schedule`
from flat NumPy columns in one pass.

The sequential path assembles schedules one :class:`ScheduledJob` at a time:
every ``Schedule.add`` re-validates its arguments and normalizes its machine
spans in Python.  For the vectorized algorithm drivers — which already hold
their whole answer in arrays (γ-counts, prefix-sum machine offsets, start
times) — that per-entry tour through Python is the dominant cost of producing
the result object.

:class:`ArraySchedule` keeps the placements as flat *columns* instead:

* per entry: the job, its start time and an optional duration override;
* per span: ``(owner_row, first_machine, machine_count)`` — an entry may own
  any number of spans, so multi-span placements (e.g. shelf constructions
  reusing scattered leftover machines) stay flat too.

:meth:`ArraySchedule.build` validates and normalizes **all** spans with a
handful of array operations (one ``lexsort`` + vectorized adjacency merge,
mirroring ``repro.core.schedule._normalize_spans`` including its rejection of
double-booked machines) and then *installs the columns directly* as the
built schedule's storage — since :class:`~repro.core.schedule.Schedule` is
itself columnar, no per-entry conversion happens at all; entry objects are
materialized lazily by the schedule only if someone subscripts them.  The
resulting :class:`Schedule` is *identical* (same entry order, same floats,
same span tuples) to one assembled through sequential ``Schedule.add`` calls.

:class:`~repro.core.schedule.ScheduleColumns` — the flat read-side view the
vectorized validator (:mod:`repro.core.validation`) and the event-sweep
simulator (:mod:`repro.simulator.engine`) consume — now lives in
:mod:`repro.core.schedule` next to the container; it is re-exported here for
backwards compatibility, together with the sweep helpers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.capacity import index_array
from ..core.job import MoldableJob
from ..core.schedule import (
    MAX_COLUMNAR_M,
    MachineSpan,
    Schedule,
    ScheduleColumns,
    _ColumnBlock,
    grouped_running_count,
    spans_time_overlap,
)

__all__ = [
    "ArraySchedule",
    "ScheduleColumns",
    "schedule_from_arrays",
    "grouped_running_count",
    "spans_time_overlap",
    "MAX_COLUMNAR_M",
]


class ArraySchedule:
    """Columnar builder for a :class:`Schedule` on ``m`` machines.

    Rows can be appended one placement at a time (:meth:`append`, for
    loop-driven producers like the shelf constructions) or as whole column
    blocks (:meth:`extend_columns`, for producers that are already
    array-native like the FPTAS dual step).  :meth:`build` materializes the
    schedule once, with batched span normalization and validation.
    """

    __slots__ = (
        "m",
        "metadata",
        "_jobs",
        "_starts",
        "_overrides",
        "_any_override",
        "_span_owner",
        "_span_first",
        "_span_count",
    )

    def __init__(self, m: int, *, metadata: Optional[dict] = None) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = int(m)
        self.metadata = dict(metadata) if metadata else {}
        self._jobs: List[MoldableJob] = []
        self._starts: List[float] = []
        self._overrides: List[Optional[float]] = []
        self._any_override = False
        self._span_owner: List[int] = []
        self._span_first: List[int] = []
        self._span_count: List[int] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def raw_columns(self):
        """The builder's mutable column lists, in row/span order:
        ``(jobs, starts, overrides, span_owner, span_first, span_count)``.

        For trusted in-package producers that stream rows from a hot loop
        (the columnar list-scheduling backends) and cannot afford one
        :meth:`append` call per placement.  Writers must keep the columns
        consistent (every row needs at least one span; overrides entry per
        row) — :meth:`build` re-validates everything anyway.  Duration
        overrides appended here must also be flagged via
        :meth:`mark_any_override`.
        """
        return (
            self._jobs,
            self._starts,
            self._overrides,
            self._span_owner,
            self._span_first,
            self._span_count,
        )

    def mark_any_override(self) -> None:
        """Tell :meth:`build` that :meth:`raw_columns` writers appended a
        non-``None`` duration override."""
        self._any_override = True

    # ------------------------------------------------------------------ edit
    def append(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration_override: Optional[float] = None,
    ) -> None:
        """Record one placement (row mode)."""
        row = len(self._jobs)
        self._jobs.append(job)
        self._starts.append(start)
        self._overrides.append(duration_override)
        if duration_override is not None:
            self._any_override = True
        owner = self._span_owner
        firsts = self._span_first
        counts = self._span_count
        for first, count in spans:
            owner.append(row)
            firsts.append(first)
            counts.append(count)

    def extend_columns(
        self,
        jobs: Sequence[MoldableJob],
        starts,
        span_first,
        span_count,
        *,
        span_owner=None,
        duration_overrides: Optional[Sequence[Optional[float]]] = None,
    ) -> None:
        """Record a block of placements from flat columns.

        ``jobs`` and ``starts`` are aligned per entry; ``span_first`` /
        ``span_count`` are aligned per span.  ``span_owner`` maps each span to
        an entry index *within this block* and defaults to one span per entry
        (``span_owner[i] = i``, requiring the span columns to have the same
        length as ``jobs``).
        """
        base = len(self._jobs)
        starts = np.asarray(starts, dtype=np.float64)
        span_first = span_first if isinstance(span_first, np.ndarray) else index_array(span_first)
        span_count = span_count if isinstance(span_count, np.ndarray) else index_array(span_count)
        if len(starts) != len(jobs):
            raise ValueError("jobs and starts must have the same length")
        if span_owner is None:
            if len(span_first) != len(jobs) or len(span_count) != len(jobs):
                raise ValueError(
                    "span columns must be entry-aligned when span_owner is omitted"
                )
            owner_list = range(base, base + len(jobs))
        else:
            span_owner = np.asarray(span_owner)
            if len(span_owner) != len(span_first):
                raise ValueError("span_owner must be span-aligned")
            if len(span_owner) and (
                span_owner.min() < 0 or span_owner.max() >= len(jobs)
            ):
                raise ValueError("span_owner indices out of range for this block")
            owner_list = (span_owner + base).tolist()
        if len(span_first) != len(span_count):
            raise ValueError("span_first and span_count must have the same length")
        self._jobs.extend(jobs)
        self._starts.extend(starts.tolist())
        if duration_overrides is None:
            self._overrides.extend([None] * len(jobs))
        else:
            if len(duration_overrides) != len(jobs):
                raise ValueError("duration_overrides must be entry-aligned")
            self._overrides.extend(duration_overrides)
            if any(o is not None for o in duration_overrides):
                self._any_override = True
        self._span_owner.extend(owner_list)
        self._span_first.extend(span_first.tolist())
        self._span_count.extend(span_count.tolist())

    # ----------------------------------------------------------------- build
    def build(self) -> Schedule:
        """Materialize the :class:`Schedule` (one batched pass, no entry objects).

        Raises :class:`ValueError` for exactly the inputs sequential
        ``Schedule.add`` would reject: non-positive span counts, negative
        machine indices, negative start times, entries without spans, and
        overlapping (double-booking) spans within one entry.
        """
        n = len(self._jobs)
        schedule = Schedule(m=self.m, metadata=self.metadata)
        if n == 0:
            return schedule

        starts = np.asarray(self._starts, dtype=np.float64)
        owner = np.asarray(self._span_owner, dtype=np.int64)
        # machine indices / counts beyond int64 (astronomical m) land in
        # exact object-dtype columns; every array op below is dtype-agnostic
        first = index_array(self._span_first)
        count = index_array(self._span_count)

        invalid = (count <= 0) | (first < 0)
        if invalid.any():
            # report the first offending span in input order, like the scalar
            # per-span validation loop
            i = int(np.flatnonzero(invalid)[0])
            if count[i] <= 0:
                raise ValueError(f"span count must be positive, got {int(count[i])}")
            raise ValueError(f"span start must be non-negative, got {int(first[i])}")
        # Normalize: sort spans by (owner, first), reject overlaps, merge
        # exact adjacency — the batched twin of ``_normalize_spans``.
        order = np.lexsort((first, owner))
        of = first[order]
        oc = count[order]
        oo = owner[order]
        ends = of + oc
        same_owner = oo[1:] == oo[:-1]
        overlap = same_owner & (of[1:] < ends[:-1])
        if overlap.any():
            i = int(np.flatnonzero(overlap)[0])
            raise ValueError(
                f"overlapping machine spans ({int(of[i])}, {int(oc[i])}) and "
                f"({int(of[i + 1])}, {int(oc[i + 1])}) double-book a machine"
            )
        if starts.size and starts.min() < 0:
            bad = float(starts[starts < 0][0])
            raise ValueError(f"start time must be non-negative, got {bad}")
        spans_per_entry = np.bincount(owner, minlength=n)
        if spans_per_entry.min() == 0:
            raise ValueError("a scheduled job needs at least one machine span")

        adjacent = same_owner & (of[1:] == ends[:-1])
        new_run = np.concatenate(([True], ~adjacent))
        run_start_idx = np.flatnonzero(new_run)
        run_first = of[run_start_idx]
        run_last_idx = np.concatenate((run_start_idx[1:], [len(of)])) - 1
        run_count = ends[run_last_idx] - run_first
        run_owner = oo[run_start_idx]

        # exact per-entry processor totals: segment sums over the sorted spans
        entry_start = np.flatnonzero(np.concatenate(([True], oo[1:] != oo[:-1])))
        procs = np.add.reduceat(oc, entry_start)

        runs_per_entry = np.bincount(run_owner, minlength=n)
        span_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(runs_per_entry, out=span_off[1:])

        duration = np.full(n, np.nan, dtype=np.float64)
        has_override = np.zeros(n, dtype=bool)
        if self._any_override:
            for i, override in enumerate(self._overrides):
                if override is not None:
                    has_override[i] = True
                    duration[i] = override

        block = _ColumnBlock(
            n, starts, procs, duration, has_override, span_off, run_first, run_count
        )
        schedule._install_block(list(self._jobs), block)
        return schedule


def schedule_from_arrays(
    jobs: Sequence[MoldableJob],
    m: int,
    job_idx,
    starts,
    span_first,
    span_count,
    *,
    span_owner=None,
    duration_overrides: Optional[Sequence[Optional[float]]] = None,
    metadata: Optional[dict] = None,
) -> Schedule:
    """One-shot columnar assembly: ``Schedule`` from flat NumPy columns.

    ``job_idx[i]`` indexes ``jobs`` for entry row ``i``; the remaining columns
    are as in :meth:`ArraySchedule.extend_columns`.  Equivalent to (but much
    faster than) the sequential loop ::

        schedule = Schedule(m=m, metadata=metadata)
        for i, j in enumerate(job_idx):
            schedule.add(jobs[j], starts[i], [(span_first[i], span_count[i])])
    """
    builder = ArraySchedule(m, metadata=metadata)
    job_idx = np.asarray(job_idx, dtype=np.int64)
    entry_jobs = [jobs[i] for i in job_idx.tolist()]
    builder.extend_columns(
        entry_jobs,
        starts,
        span_first,
        span_count,
        span_owner=span_owner,
        duration_overrides=duration_overrides,
    )
    return builder.build()
