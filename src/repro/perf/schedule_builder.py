"""Columnar schedule assembly: build a :class:`~repro.core.schedule.Schedule`
from flat NumPy columns in one pass.

The object path assembles schedules one :class:`ScheduledJob` at a time:
every ``Schedule.add`` runs the frozen-dataclass machinery, re-validates its
arguments and normalizes its machine spans in Python.  For the vectorized
algorithm drivers — which already hold their whole answer in arrays (γ-counts,
prefix-sum machine offsets, start times) — that per-entry tour through Python
is the dominant cost of producing the result object.

:class:`ArraySchedule` keeps the placements as flat *columns* instead:

* per entry: the job, its start time and an optional duration override;
* per span: ``(owner_row, first_machine, machine_count)`` — an entry may own
  any number of spans, so multi-span placements (e.g. shelf constructions
  reusing scattered leftover machines) stay flat too.

:meth:`ArraySchedule.build` validates and normalizes **all** spans with a
handful of array operations (one ``lexsort`` + vectorized adjacency merge,
mirroring ``repro.core.schedule._normalize_spans`` including its rejection of
double-booked machines) and then materializes the ``ScheduledJob`` entries in
a single tight loop that bypasses the per-entry re-validation — the resulting
:class:`Schedule` is *identical* (same entry order, same floats, same span
tuples) to one assembled through sequential ``Schedule.add`` calls.

:class:`ScheduleColumns` is the read-side counterpart: one pass over an
existing schedule's entries yields the flat arrays that the vectorized
validator (:mod:`repro.core.validation`) and the event-sweep simulator
(:mod:`repro.simulator.engine`) consume.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.job import MoldableJob
from ..core.schedule import MachineSpan, Schedule, ScheduledJob

__all__ = [
    "ArraySchedule",
    "ScheduleColumns",
    "schedule_from_arrays",
    "MAX_COLUMNAR_M",
]


#: Above this machine count int64 span arithmetic could overflow; columnar
#: consumers fall back to the scalar (arbitrary-precision) paths.
MAX_COLUMNAR_M = 1 << 62


class ArraySchedule:
    """Columnar builder for a :class:`Schedule` on ``m`` machines.

    Rows can be appended one placement at a time (:meth:`append`, for
    loop-driven producers like the shelf constructions) or as whole column
    blocks (:meth:`extend_columns`, for producers that are already
    array-native like the FPTAS dual step).  :meth:`build` materializes the
    schedule once, with batched span normalization and validation.
    """

    __slots__ = (
        "m",
        "metadata",
        "_jobs",
        "_starts",
        "_overrides",
        "_span_owner",
        "_span_first",
        "_span_count",
    )

    def __init__(self, m: int, *, metadata: Optional[dict] = None) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = int(m)
        self.metadata = dict(metadata) if metadata else {}
        self._jobs: List[MoldableJob] = []
        self._starts: List[float] = []
        self._overrides: List[Optional[float]] = []
        self._span_owner: List[int] = []
        self._span_first: List[int] = []
        self._span_count: List[int] = []

    def __len__(self) -> int:
        return len(self._jobs)

    # ------------------------------------------------------------------ edit
    def append(
        self,
        job: MoldableJob,
        start: float,
        spans: Sequence[MachineSpan],
        duration_override: Optional[float] = None,
    ) -> None:
        """Record one placement (row mode)."""
        row = len(self._jobs)
        self._jobs.append(job)
        self._starts.append(start)
        self._overrides.append(duration_override)
        owner = self._span_owner
        firsts = self._span_first
        counts = self._span_count
        for first, count in spans:
            owner.append(row)
            firsts.append(first)
            counts.append(count)

    def extend_columns(
        self,
        jobs: Sequence[MoldableJob],
        starts,
        span_first,
        span_count,
        *,
        span_owner=None,
        duration_overrides: Optional[Sequence[Optional[float]]] = None,
    ) -> None:
        """Record a block of placements from flat columns.

        ``jobs`` and ``starts`` are aligned per entry; ``span_first`` /
        ``span_count`` are aligned per span.  ``span_owner`` maps each span to
        an entry index *within this block* and defaults to one span per entry
        (``span_owner[i] = i``, requiring the span columns to have the same
        length as ``jobs``).
        """
        base = len(self._jobs)
        starts = np.asarray(starts, dtype=np.float64)
        span_first = np.asarray(span_first)
        span_count = np.asarray(span_count)
        if len(starts) != len(jobs):
            raise ValueError("jobs and starts must have the same length")
        if span_owner is None:
            if len(span_first) != len(jobs) or len(span_count) != len(jobs):
                raise ValueError(
                    "span columns must be entry-aligned when span_owner is omitted"
                )
            owner_list = range(base, base + len(jobs))
        else:
            span_owner = np.asarray(span_owner)
            if len(span_owner) != len(span_first):
                raise ValueError("span_owner must be span-aligned")
            if len(span_owner) and (
                span_owner.min() < 0 or span_owner.max() >= len(jobs)
            ):
                raise ValueError("span_owner indices out of range for this block")
            owner_list = (span_owner + base).tolist()
        if len(span_first) != len(span_count):
            raise ValueError("span_first and span_count must have the same length")
        self._jobs.extend(jobs)
        self._starts.extend(starts.tolist())
        if duration_overrides is None:
            self._overrides.extend([None] * len(jobs))
        else:
            if len(duration_overrides) != len(jobs):
                raise ValueError("duration_overrides must be entry-aligned")
            self._overrides.extend(duration_overrides)
        self._span_owner.extend(owner_list)
        self._span_first.extend(span_first.tolist())
        self._span_count.extend(span_count.tolist())

    # ----------------------------------------------------------------- build
    def build(self) -> Schedule:
        """Materialize the :class:`Schedule` (one batched pass).

        Raises :class:`ValueError` for exactly the inputs sequential
        ``Schedule.add`` would reject: non-positive span counts, negative
        machine indices, negative start times, entries without spans, and
        overlapping (double-booking) spans within one entry.
        """
        n = len(self._jobs)
        schedule = Schedule(m=self.m, metadata=self.metadata)
        if n == 0:
            return schedule

        starts = np.asarray(self._starts, dtype=np.float64)
        owner = np.asarray(self._span_owner, dtype=np.int64)
        first = np.asarray(self._span_first, dtype=np.int64)
        count = np.asarray(self._span_count, dtype=np.int64)

        invalid = (count <= 0) | (first < 0)
        if invalid.any():
            # report the first offending span in input order, like the scalar
            # per-span validation loop
            i = int(np.flatnonzero(invalid)[0])
            if count[i] <= 0:
                raise ValueError(f"span count must be positive, got {int(count[i])}")
            raise ValueError(f"span start must be non-negative, got {int(first[i])}")
        # Normalize: sort spans by (owner, first), reject overlaps, merge
        # exact adjacency — the batched twin of ``_normalize_spans``.
        order = np.lexsort((first, owner))
        of = first[order]
        oc = count[order]
        oo = owner[order]
        ends = of + oc
        same_owner = oo[1:] == oo[:-1]
        overlap = same_owner & (of[1:] < ends[:-1])
        if overlap.any():
            i = int(np.flatnonzero(overlap)[0])
            raise ValueError(
                f"overlapping machine spans ({int(of[i])}, {int(oc[i])}) and "
                f"({int(of[i + 1])}, {int(oc[i + 1])}) double-book a machine"
            )
        if starts.size and starts.min() < 0:
            bad = float(starts[starts < 0][0])
            raise ValueError(f"start time must be non-negative, got {bad}")
        spans_per_entry = np.bincount(owner, minlength=n)
        if spans_per_entry.min() == 0:
            raise ValueError("a scheduled job needs at least one machine span")

        adjacent = same_owner & (of[1:] == ends[:-1])
        new_run = np.concatenate(([True], ~adjacent))
        run_start_idx = np.flatnonzero(new_run)
        run_first = of[run_start_idx]
        run_last_idx = np.concatenate((run_start_idx[1:], [len(of)])) - 1
        run_count = ends[run_last_idx] - run_first
        run_owner = oo[run_start_idx]

        runs_per_entry = np.bincount(run_owner, minlength=n)
        offsets = np.concatenate(([0], np.cumsum(runs_per_entry))).tolist()
        span_pairs = list(zip(run_first.tolist(), run_count.tolist()))

        jobs = self._jobs
        starts_list = starts.tolist()
        overrides = self._overrides
        entries: List[ScheduledJob] = []
        append = entries.append
        new = ScheduledJob.__new__
        set_attr = object.__setattr__
        for i in range(n):
            entry = new(ScheduledJob)
            set_attr(entry, "job", jobs[i])
            set_attr(entry, "start", starts_list[i])
            set_attr(entry, "spans", tuple(span_pairs[offsets[i] : offsets[i + 1]]))
            set_attr(entry, "duration_override", overrides[i])
            append(entry)
        schedule.entries = entries
        return schedule


def schedule_from_arrays(
    jobs: Sequence[MoldableJob],
    m: int,
    job_idx,
    starts,
    span_first,
    span_count,
    *,
    span_owner=None,
    duration_overrides: Optional[Sequence[Optional[float]]] = None,
    metadata: Optional[dict] = None,
) -> Schedule:
    """One-shot columnar assembly: ``Schedule`` from flat NumPy columns.

    ``job_idx[i]`` indexes ``jobs`` for entry row ``i``; the remaining columns
    are as in :meth:`ArraySchedule.extend_columns`.  Equivalent to (but much
    faster than) the sequential loop ::

        schedule = Schedule(m=m, metadata=metadata)
        for i, j in enumerate(job_idx):
            schedule.add(jobs[j], starts[i], [(span_first[i], span_count[i])])
    """
    builder = ArraySchedule(m, metadata=metadata)
    job_idx = np.asarray(job_idx, dtype=np.int64)
    entry_jobs = [jobs[i] for i in job_idx.tolist()]
    builder.extend_columns(
        entry_jobs,
        starts,
        span_first,
        span_count,
        span_owner=span_owner,
        duration_overrides=duration_overrides,
    )
    return builder.build()


class ScheduleColumns:
    """Flat array view of an existing schedule (one pass over the entries).

    Attributes
    ----------
    start, duration, end:
        Per-entry float64 arrays (``end = start + duration``; overrides
        respected).
    processors:
        Per-entry int64 processor counts.
    has_override:
        Per-entry bool mask of explicit duration overrides.
    span_owner, span_first, span_end:
        Per-span int64 columns (``span_end`` is exclusive).
    """

    __slots__ = (
        "n",
        "start",
        "duration",
        "end",
        "processors",
        "has_override",
        "span_owner",
        "span_first",
        "span_end",
    )

    def __init__(self, schedule: Schedule, *, oracle=None) -> None:
        entries = schedule.entries
        n = len(entries)
        self.n = n
        self.start = np.empty(n, dtype=np.float64)
        self.duration = np.empty(n, dtype=np.float64)
        self.processors = np.empty(n, dtype=np.int64)
        self.has_override = np.zeros(n, dtype=bool)
        span_owner: List[int] = []
        span_first: List[int] = []
        span_end: List[int] = []
        #: entries whose duration comes from the oracle batch, not the memo
        deferred_rows: List[int] = []
        deferred_jobs: List[int] = []
        index_of = oracle.index_of if oracle is not None else None
        for i, e in enumerate(entries):
            self.start[i] = e.start
            procs = 0
            for f, c in e.spans:
                span_owner.append(i)
                span_first.append(f)
                span_end.append(f + c)
                procs += c
            self.processors[i] = procs
            override = e.duration_override
            if override is not None:
                self.has_override[i] = True
                self.duration[i] = override
            elif index_of is not None:
                try:
                    deferred_jobs.append(index_of(e.job))
                    deferred_rows.append(i)
                except KeyError:  # job not part of the oracle's instance
                    self.duration[i] = e.job.processing_time(procs)
            else:
                self.duration[i] = e.job.processing_time(procs)
        if deferred_rows:
            # one batched kernel pass for every oracle-known duration
            rows = np.asarray(deferred_rows, dtype=np.int64)
            self.duration[rows] = oracle.bundle.eval_at(
                np.asarray(deferred_jobs, dtype=np.int64),
                self.processors[rows],
            )
        self.end = self.start + self.duration
        self.span_owner = np.asarray(span_owner, dtype=np.int64)
        self.span_first = np.asarray(span_first, dtype=np.int64)
        self.span_end = np.asarray(span_end, dtype=np.int64)


def grouped_running_count(group_ids: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Per-group running sums of ``deltas`` (both sorted by group already).

    One global prefix sum, then each group is re-based by subtracting the
    prefix value just before its first element — the standard columnar
    substitute for a per-group Python loop.
    """
    run = np.cumsum(deltas)
    if len(run) == 0:
        return run
    new_group = np.concatenate(([True], group_ids[1:] != group_ids[:-1]))
    group_start = np.flatnonzero(new_group)
    base = np.concatenate(([deltas.dtype.type(0)], run[group_start[1:] - 1]))
    sizes = np.diff(np.concatenate((group_start, [len(run)])))
    return run - np.repeat(base, sizes)


def spans_time_overlap(
    span_first: np.ndarray,
    span_end: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    *,
    max_incidences: Optional[int] = None,
) -> Optional[bool]:
    """Detect whether any two busy rectangles (machine span × time interval)
    overlap with positive area.

    This is the O(P log P) sort/prefix-sum core of the vectorized conflict
    checks: machine spans are cut at every distinct span boundary, each piece
    is expanded to the elementary segments it covers, and per segment a
    time-sorted event sweep counts simultaneously active intervals (ends sort
    before starts, so touching intervals never count as two).

    Returns ``True``/``False``, or ``None`` when the expansion would exceed
    ``max_incidences`` (pathologically nested spans) — the caller should fall
    back to a scalar sweep.  The check is *exact* (no float tolerance): a
    ``True`` may still be a within-tolerance touch that a tolerant scalar
    checker would accept, so ``True`` means "re-check", not "infeasible".
    """
    p = len(span_first)
    if p < 2:
        return False
    cuts = np.unique(np.concatenate((span_first, span_end)))
    lo = np.searchsorted(cuts, span_first, side="left")
    hi = np.searchsorted(cuts, span_end, side="left")
    counts = hi - lo
    total = int(counts.sum())
    if max_incidences is not None and total > max_incidences:
        return None
    piece = np.repeat(np.arange(p, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts[:-1])))
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    seg = lo[piece] + within
    ev_seg = np.concatenate((seg, seg))
    ev_time = np.concatenate((start[piece], end[piece]))
    ev_delta = np.concatenate(
        (np.ones(total, dtype=np.int64), -np.ones(total, dtype=np.int64))
    )
    order = np.lexsort((ev_delta, ev_time, ev_seg))
    running = grouped_running_count(ev_seg[order], ev_delta[order])
    return bool(running.size) and int(running.max()) >= 2
