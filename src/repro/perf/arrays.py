"""Flat-array job state for cross-job vectorized oracle evaluation.

:class:`JobArrayBundle` partitions a job list into groups by *exact* job
class and stores each group's model parameters in flat NumPy arrays.  The
central operation is :meth:`JobArrayBundle.eval_at`: given an array of job
indices and an equally long array of processor counts, return the processing
times ``t_{j_i}(k_i)`` with one vectorized kernel invocation per job class —
no per-job Python call for the closed-form models.

The kernels replicate the scalar ``MoldableJob._time`` formulas operation by
operation so that results are bit-for-bit identical to
``MoldableJob.processing_time`` (see the parity tests in
``tests/perf/test_parity.py``).  Jobs of unknown subclasses — and
:class:`~repro.core.job.OracleJob`, whose oracle is an arbitrary callable —
land in a fallback group that loops over the scalar (memoised) oracle.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.job import (
    AmdahlJob,
    CommunicationJob,
    MoldableJob,
    OracleJob,
    PowerLawJob,
    RigidJob,
    TabulatedJob,
)

__all__ = ["JobArrayBundle"]


class _Group:
    """One job-class group: parameter arrays plus the vectorized kernel."""

    __slots__ = ("jobs",)

    def __init__(self) -> None:
        self.jobs: List[MoldableJob] = []

    def add(self, job: MoldableJob) -> None:
        self.jobs.append(job)

    def finalize(self) -> None:  # pragma: no cover - overridden
        pass

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class _AmdahlGroup(_Group):
    __slots__ = ("t1", "f")

    def finalize(self) -> None:
        self.t1 = np.array([j.t1 for j in self.jobs], dtype=np.float64)
        self.f = np.array([j.serial_fraction for j in self.jobs], dtype=np.float64)

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        f = self.f[pos]
        return self.t1[pos] * (f + (1.0 - f) / ks)


class _PowerLawGroup(_Group):
    __slots__ = ("t1", "alpha")

    def finalize(self) -> None:
        self.t1 = np.array([j.t1 for j in self.jobs], dtype=np.float64)
        self.alpha = np.array([j.alpha for j in self.jobs], dtype=np.float64)

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        # float_power (libm pow) matches CPython's ``**`` bit for bit;
        # numpy's SIMD ``power`` may be one ulp off.
        return self.t1[pos] / np.float_power(ks, self.alpha[pos])


class _CommunicationGroup(_Group):
    __slots__ = ("t1", "overhead", "k_star")

    def finalize(self) -> None:
        self.t1 = np.array([j.t1 for j in self.jobs], dtype=np.float64)
        self.overhead = np.array([j.overhead for j in self.jobs], dtype=np.float64)
        # k_star is None exactly when overhead == 0, in which case the
        # overhead term is exactly zero and min(k, inf) == k.
        self.k_star = np.array(
            [float(j.k_star) if j.k_star is not None else np.inf for j in self.jobs],
            dtype=np.float64,
        )

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        k_eff = np.minimum(ks, self.k_star[pos])
        return self.t1[pos] / k_eff + self.overhead[pos] * (k_eff - 1)


class _TabulatedGroup(_Group):
    __slots__ = ("flat", "offsets", "lengths")

    def finalize(self) -> None:
        tables = [np.asarray(j.times, dtype=np.float64) for j in self.jobs]
        self.flat = np.concatenate(tables) if tables else np.empty(0, dtype=np.float64)
        self.lengths = np.array([len(t) for t in tables], dtype=np.int64)
        self.offsets = np.zeros(len(tables), dtype=np.int64)
        if len(tables) > 1:
            np.cumsum(self.lengths[:-1], out=self.offsets[1:])

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        lengths = self.lengths[pos]
        # clamp in float space *before* the int64 cast: a float64 k >= 2**63
        # overflows ``astype(np.int64)`` into a negative table index
        idx = np.minimum(ks, lengths.astype(np.float64)).astype(np.int64) - 1
        return self.flat[self.offsets[pos] + idx]


class _RigidGroup(_Group):
    __slots__ = ("size", "duration", "penalty")

    def finalize(self) -> None:
        self.size = np.array([j.size for j in self.jobs], dtype=np.float64)
        self.duration = np.array([j.duration for j in self.jobs], dtype=np.float64)
        self.penalty = np.array([j.penalty for j in self.jobs], dtype=np.float64)

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        return np.where(ks >= self.size[pos], self.duration[pos], self.penalty[pos])


class _FallbackGroup(_Group):
    """Jobs without a cross-job closed form: loop over the scalar oracle."""

    __slots__ = ()

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        jobs = self.jobs
        return np.array(
            [jobs[p].processing_time(int(k)) for p, k in zip(pos, ks)],
            dtype=np.float64,
        )


class _OracleHookGroup(_Group):
    """:class:`OracleJob` instances carrying a user-supplied
    ``times_vectorized`` callable: one batched call per *job* present in the
    query (each job has its own callable, but all its processor counts go
    through in a single array) instead of one Python call per ``(job, k)``
    pair."""

    __slots__ = ()

    def eval(self, pos: np.ndarray, ks: np.ndarray) -> np.ndarray:
        out = np.empty(len(pos), dtype=np.float64)
        order = np.argsort(pos, kind="stable")
        sorted_pos = pos[order]
        # the hook contract hands the callable a float64 array
        sorted_ks = np.asarray(ks[order], dtype=np.float64)
        breaks = np.flatnonzero(sorted_pos[1:] != sorted_pos[:-1]) + 1
        starts = np.concatenate(([0], breaks))
        stops = np.concatenate((breaks, [len(sorted_pos)]))
        jobs = self.jobs
        for a, b in zip(starts.tolist(), stops.tolist()):
            job = jobs[sorted_pos[a]]
            out[order[a:b]] = np.asarray(
                job.times_vectorized(sorted_ks[a:b]), dtype=np.float64
            )
        return out


#: Exact-type kernel registry.  ``type(job) is cls`` (not isinstance) so that
#: user subclasses with overridden ``_time`` safely fall back to the loop.
_GROUP_FOR_TYPE = {
    AmdahlJob: _AmdahlGroup,
    PowerLawJob: _PowerLawGroup,
    CommunicationJob: _CommunicationGroup,
    TabulatedJob: _TabulatedGroup,
    RigidJob: _RigidGroup,
}


def _group_class_for(job: MoldableJob) -> type:
    cls = _GROUP_FOR_TYPE.get(type(job))
    if cls is not None:
        return cls
    if type(job) is OracleJob and job.times_vectorized is not None:
        return _OracleHookGroup
    return _FallbackGroup


class JobArrayBundle:
    """Per-class flat parameter arrays over a fixed job list.

    Parameters
    ----------
    jobs:
        The instance's jobs; their order defines the job indices used by
        :meth:`eval_at` / :meth:`eval_all`.
    """

    def __init__(self, jobs: Sequence[MoldableJob]) -> None:
        self.jobs: List[MoldableJob] = list(jobs)
        n = len(self.jobs)
        self.group_of = np.empty(n, dtype=np.int64)
        self.pos_in_group = np.empty(n, dtype=np.int64)
        groups: List[_Group] = []
        slot_of_type: dict = {}
        for i, job in enumerate(self.jobs):
            cls = _group_class_for(job)
            slot = slot_of_type.get(cls)
            if slot is None:
                slot = len(groups)
                slot_of_type[cls] = slot
                groups.append(cls())
            self.group_of[i] = slot
            self.pos_in_group[i] = len(groups[slot].jobs)
            groups[slot].add(job)
        for g in groups:
            g.finalize()
        self.groups = groups
        # static partition of all job indices by group, so whole-instance
        # evaluations skip the per-call mask computations of eval_at
        self._group_index = [
            np.flatnonzero(self.group_of == gid) for gid in range(len(groups))
        ]
        self._group_pos = [self.pos_in_group[idx] for idx in self._group_index]

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def vectorized_fraction(self) -> float:
        """Fraction of jobs served by a closed-form kernel (1.0 = no fallback)."""
        if not self.jobs:
            return 1.0
        fallback = sum(len(g.jobs) for g in self.groups if isinstance(g, _FallbackGroup))
        return 1.0 - fallback / len(self.jobs)

    def eval_at(self, job_idx: np.ndarray, ks: np.ndarray) -> np.ndarray:
        """``t_{jobs[job_idx[i]]}(ks[i])`` for all ``i``, one kernel call per
        job-class group present among ``job_idx``."""
        job_idx = np.asarray(job_idx, dtype=np.int64)
        ks = np.asarray(ks, dtype=np.float64)
        out = np.empty(len(job_idx), dtype=np.float64)
        if len(job_idx) == 0:
            return out
        gof = self.group_of[job_idx]
        for gid, group in enumerate(self.groups):
            mask = gof == gid
            if not mask.any():
                continue
            pos = self.pos_in_group[job_idx[mask]]
            out[mask] = group.eval(pos, ks[mask])
        return out

    def eval_all(self, ks) -> np.ndarray:
        """Processing times of *all* jobs at per-job counts ``ks`` (scalar or
        length-``n`` array).

        Uses the static group partition computed at construction, so a
        whole-instance evaluation is exactly one kernel call per job class
        with no per-call masking."""
        n = len(self.jobs)
        ks = np.broadcast_to(np.asarray(ks, dtype=np.float64), (n,))
        out = np.empty(n, dtype=np.float64)
        for group, idx, pos in zip(self.groups, self._group_index, self._group_pos):
            out[idx] = group.eval(pos, ks[idx])
        return out
